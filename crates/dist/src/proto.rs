//! The coordinator/worker message protocol.
//!
//! Every message is one `dasc-net` frame: the frame's `msg_type` is the
//! [`MsgType`] discriminant and the payload is the [`Wire`]-encoded
//! body. The scheme is deliberately Hadoop-shaped: workers *pull* tasks
//! ([`RequestTask`](Msg::RequestTask)) the way task trackers ask the
//! job tracker for work on each heartbeat. Task inputs travel one of
//! two ways: inline (points embedded in the task body — the original
//! scheme, still the fallback), or **shard-addressed** — a job
//! submitted against a packed `.dstr` dataset ships only the
//! [`DatasetManifest`] plus row ranges, and workers resolve the shard
//! bytes through a local cache, fetching misses from the coordinator
//! with [`ShardRequest`](Msg::ShardRequest) (the coordinator plays
//! both job tracker and name node).
//!
//! | tag | message        | direction            |
//! |-----|----------------|----------------------|
//! | 1   | Register       | worker → coordinator |
//! | 2   | RegisterAck    | reply                |
//! | 3   | Heartbeat      | worker → coordinator |
//! | 4   | HeartbeatAck   | reply                |
//! | 5   | RequestTask    | worker → coordinator |
//! | 6   | AssignTask     | reply                |
//! | 7   | NoTask         | reply                |
//! | 8   | TaskDone       | worker → coordinator |
//! | 9   | TaskAck        | reply                |
//! | 10  | SubmitJob      | client → coordinator |
//! | 11  | JobAccepted    | reply                |
//! | 12  | PollJob        | client → coordinator |
//! | 13  | JobPending     | reply                |
//! | 14  | JobResult      | reply                |
//! | 15  | JobError       | reply                |
//! | 16  | MetricsRequest | client → coordinator |
//! | 17  | MetricsReply   | reply                |
//! | 18  | TaskFailed     | worker → coordinator |
//! | 19  | TraceRequest   | client → coordinator |
//! | 20  | TraceReply     | reply                |
//! | 21  | ShardRequest   | worker → coordinator |
//! | 22  | ShardReply     | reply                |
//!
//! Observability rides the same frames: tasks carry a trace context
//! ([`Task::trace_parent`]), completed tasks return their span log
//! inside [`TaskDone`](Msg::TaskDone), and heartbeats piggyback each
//! worker's [`MetricsSnapshot`] for coordinator-side federation.

use dasc_kernel::Kernel;
use dasc_lsh::HashPlane;
use dasc_net::{Wire, WireError, WireReader, WireWriter};
use dasc_obs::{HistogramSnapshot, MetricsSnapshot, SpanRecord, HISTOGRAM_BUCKETS};
use dasc_store::{DatasetManifest, ShardMeta};

/// Frame `msg_type` values (see module table).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u16)]
pub enum MsgType {
    Register = 1,
    RegisterAck = 2,
    Heartbeat = 3,
    HeartbeatAck = 4,
    RequestTask = 5,
    AssignTask = 6,
    NoTask = 7,
    TaskDone = 8,
    TaskAck = 9,
    SubmitJob = 10,
    JobAccepted = 11,
    PollJob = 12,
    JobPending = 13,
    JobResult = 14,
    JobError = 15,
    MetricsRequest = 16,
    MetricsReply = 17,
    TaskFailed = 18,
    TraceRequest = 19,
    TraceReply = 20,
    ShardRequest = 21,
    ShardReply = 22,
}

impl MsgType {
    /// Parse a frame's `msg_type` field.
    pub fn from_u16(v: u16) -> Option<Self> {
        Some(match v {
            1 => MsgType::Register,
            2 => MsgType::RegisterAck,
            3 => MsgType::Heartbeat,
            4 => MsgType::HeartbeatAck,
            5 => MsgType::RequestTask,
            6 => MsgType::AssignTask,
            7 => MsgType::NoTask,
            8 => MsgType::TaskDone,
            9 => MsgType::TaskAck,
            10 => MsgType::SubmitJob,
            11 => MsgType::JobAccepted,
            12 => MsgType::PollJob,
            13 => MsgType::JobPending,
            14 => MsgType::JobResult,
            15 => MsgType::JobError,
            16 => MsgType::MetricsRequest,
            17 => MsgType::MetricsReply,
            18 => MsgType::TaskFailed,
            19 => MsgType::TraceRequest,
            20 => MsgType::TraceReply,
            21 => MsgType::ShardRequest,
            22 => MsgType::ShardReply,
            _ => return None,
        })
    }
}

/// One protocol message; [`Msg::msg_type`] names its frame tag.
#[derive(Clone, Debug, PartialEq)]
pub enum Msg {
    /// Worker announces itself; `name` is a human-readable label.
    Register { name: String },
    /// Coordinator's reply: assigned id + heartbeat cadence to honour.
    RegisterAck {
        worker_id: u64,
        heartbeat_interval_ms: u64,
    },
    /// Worker liveness ping (sent on a dedicated connection),
    /// piggybacking the worker's current metrics snapshot for
    /// coordinator-side federation (empty when telemetry is off).
    Heartbeat {
        worker_id: u64,
        metrics: MetricsSnapshot,
    },
    /// Heartbeat reply.
    HeartbeatAck,
    /// Worker asks for work (the Hadoop pull model).
    RequestTask { worker_id: u64 },
    /// Coordinator hands out one task.
    AssignTask { task: Task },
    /// Nothing to do right now; ask again after `backoff_ms`.
    NoTask { backoff_ms: u64 },
    /// Worker ships a completed task's output plus the span log the
    /// task body recorded under its trace context (empty when the task
    /// carried no [`Task::trace_parent`]). Span timestamps are relative
    /// to the task body's start; the coordinator rebases them onto the
    /// job timeline at assignment time.
    TaskDone {
        worker_id: u64,
        task_id: u64,
        output: TaskOutput,
        spans: Vec<SpanRecord>,
    },
    /// Coordinator acknowledges a result (stale results are acked too).
    TaskAck,
    /// Job client submits a DASC job (points + config inline).
    SubmitJob { spec: JobSpec },
    /// Coordinator accepted the job.
    JobAccepted { job_id: u64 },
    /// Job client polls for completion.
    PollJob { job_id: u64 },
    /// Job still running: which stage, and task progress within it.
    JobPending { stage: u8, done: u64, total: u64 },
    /// Job finished.
    JobResult { outcome: JobOutcome },
    /// Job (or request) failed for good.
    JobError { message: String },
    /// Ask for a Prometheus-text metrics snapshot.
    MetricsRequest,
    /// Metrics snapshot reply.
    MetricsReply { text: String },
    /// Worker reports a task attempt that errored (panicked).
    TaskFailed {
        worker_id: u64,
        task_id: u64,
        error: String,
    },
    /// Ask for a finished job's merged multi-lane trace.
    TraceRequest { job_id: u64 },
    /// The merged Chrome trace-event JSON (coordinator lane + one lane
    /// per worker). Empty string when the job collected no trace.
    TraceReply { json: String },
    /// Worker asks the coordinator (acting as name node) for one raw
    /// shard of a registered dataset, addressed by content hash.
    ShardRequest { dataset: u64, shard: u32 },
    /// The shard's file bytes, verbatim — the requester validates them
    /// against the manifest's per-shard checksum before use, so a
    /// corrupt or substituted reply can never enter a computation.
    ShardReply { bytes: Vec<u8> },
}

/// Largest merged trace JSON the coordinator will put on the wire —
/// the `dasc-net` string cap (`put_str` panics past 1 MiB), minus
/// nothing: a trace at exactly the cap still fits its own frame.
pub const MAX_TRACE_JSON: usize = 1 << 20;

/// Job progress stages reported in [`Msg::JobPending`].
pub mod stage {
    /// Queued, not yet started.
    pub const QUEUED: u8 = 0;
    /// Stage 1: LSH signature map tasks.
    pub const MAP: u8 = 1;
    /// Stage 2: per-bucket spectral reduce tasks.
    pub const REDUCE: u8 = 2;
    /// Stitch + consolidate on the coordinator.
    pub const FINISH: u8 = 3;
}

/// One schedulable unit of work.
#[derive(Clone, Debug, PartialEq)]
pub struct Task {
    /// Owning job.
    pub job_id: u64,
    /// Unique per coordinator lifetime; retries keep the id.
    pub task_id: u64,
    /// Attempt number, starting at 1 (Hadoop counts the same way).
    pub attempt: u32,
    /// Trace context: the coordinator-side span id this task's spans
    /// hang under (the stage span). 0 means the job is not tracing and
    /// the worker should not collect spans for this task.
    pub trace_parent: u64,
    /// What to compute.
    pub kind: TaskKind,
}

/// Task bodies. Inputs ride inline — the coordinator is the data node.
#[derive(Clone, Debug, PartialEq)]
pub enum TaskKind {
    /// Stage 1 (Algorithm 1): hash a contiguous slice of points with
    /// the frozen signature model; emit `(bits, point_index)` grouped
    /// by signature.
    MapSignatures {
        /// Signature width M.
        num_bits: usize,
        /// The fitted model's hash planes, in bit order.
        planes: Vec<HashPlane>,
        /// Global index of `points[0]`.
        start: usize,
        /// The slice to hash.
        points: Vec<Vec<f64>>,
    },
    /// Stage 2 (Algorithm 2 + spectral step): cluster one merged
    /// bucket's points into `ki` local clusters.
    ReduceBucket {
        /// Bucket index in the merged bucket set (drives the spectral
        /// seed derivation).
        bucket_id: usize,
        /// Clusters apportioned to this bucket.
        ki: usize,
        /// Kernel for the sub-similarity block.
        kernel: Kernel,
        /// Run seed (bucket seed derives from it).
        seed: u64,
        /// Dense→Lanczos crossover.
        lanczos_threshold: usize,
        /// Global point ids, in bucket order.
        members: Vec<usize>,
        /// The bucket's points, parallel to `members`.
        points: Vec<Vec<f64>>,
    },
    /// Shard-addressed stage 1: hash the global row range
    /// `start..start + len` of the manifest's dataset. Ships no point
    /// data — the worker resolves rows from its shard cache.
    MapSignaturesRef {
        /// Signature width M.
        num_bits: usize,
        /// The fitted model's hash planes, in bit order.
        planes: Vec<HashPlane>,
        /// Shard table of the dataset the rows live in.
        manifest: DatasetManifest,
        /// First global row of the range.
        start: usize,
        /// Rows in the range.
        len: usize,
    },
    /// Shard-addressed stage 2: cluster the bucket whose members are
    /// the listed global rows of the manifest's dataset.
    ReduceBucketRef {
        /// Bucket index in the merged bucket set (drives the spectral
        /// seed derivation).
        bucket_id: usize,
        /// Clusters apportioned to this bucket.
        ki: usize,
        /// Kernel for the sub-similarity block.
        kernel: Kernel,
        /// Run seed (bucket seed derives from it).
        seed: u64,
        /// Dense→Lanczos crossover.
        lanczos_threshold: usize,
        /// Shard table of the dataset the members live in.
        manifest: DatasetManifest,
        /// Global point ids, in bucket order.
        members: Vec<usize>,
    },
}

/// What a completed task ships back.
#[derive(Clone, Debug, PartialEq)]
pub enum TaskOutput {
    /// Stage 1 shuffle output: `(signature bits, member point ids)`.
    MapSignatures(Vec<(u64, Vec<usize>)>),
    /// Stage 2 output: `(point, bucket_id, local cluster)` triples.
    ReduceBucket(Vec<(usize, usize, usize)>),
}

/// How a job names its dataset.
#[derive(Clone, Debug, PartialEq)]
pub enum JobData {
    /// Points travel inside the submission frame (the original scheme;
    /// simple, but every task re-ships its slice of them).
    Inline { points: Vec<Vec<f64>> },
    /// The dataset is a packed `.dstr` store on the coordinator's
    /// filesystem. Only the path and the expected identity hash travel;
    /// the coordinator opens and verifies the store, then serves shards
    /// to workers on demand.
    Ref { path: String, content_hash: u64 },
}

/// A submitted DASC job: the dataset plus exactly the knobs the CLI
/// derives a `DascConfig` from, so the coordinator reconstructs the
/// identical configuration a single-process run would use.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// The dataset, inline or by store reference.
    pub data: JobData,
    /// Total clusters K.
    pub k: usize,
    /// Kernel.
    pub kernel: Kernel,
    /// Explicit signature width; 0 means the paper's `for_dataset`
    /// default `M = ⌈log₂N⌉/2 − 1`.
    pub num_bits: usize,
    /// Run seed.
    pub seed: u64,
    /// Consolidate fragments down to K clusters.
    pub consolidate: bool,
    /// Collect a merged multi-lane trace for this job, retrievable via
    /// [`Msg::TraceRequest`] once the job finishes.
    pub collect_trace: bool,
}

/// A finished job's result plus run accounting for benches.
#[derive(Clone, Debug, PartialEq)]
pub struct JobOutcome {
    /// Final cluster id per point.
    pub assignments: Vec<usize>,
    /// Number of clusters referenced.
    pub num_clusters: usize,
    /// Merged buckets formed between the stages.
    pub num_buckets: usize,
    /// Distinct workers that completed at least one task.
    pub workers_used: u64,
    /// Stage 1 wall time, microseconds.
    pub stage1_us: u64,
    /// Stage 2 wall time, microseconds.
    pub stage2_us: u64,
    /// Shuffle records shipped worker → coordinator.
    pub shuffle_records: u64,
    /// Payload bytes shipped worker → coordinator in task outputs.
    pub shuffle_bytes: u64,
    /// Task retries the job survived.
    pub task_retries: u64,
}

fn encode_kernel(k: &Kernel, w: &mut WireWriter) {
    match *k {
        Kernel::Gaussian { sigma } => {
            w.put_u8(0);
            w.put_f64(sigma);
        }
        Kernel::Linear => w.put_u8(1),
        Kernel::Polynomial { degree, c } => {
            w.put_u8(2);
            w.put_u32(degree);
            w.put_f64(c);
        }
        Kernel::Laplacian { gamma } => {
            w.put_u8(3);
            w.put_f64(gamma);
        }
    }
}

fn decode_kernel(r: &mut WireReader<'_>) -> Result<Kernel, WireError> {
    Ok(match r.u8()? {
        0 => Kernel::Gaussian { sigma: r.f64()? },
        1 => Kernel::Linear,
        2 => Kernel::Polynomial {
            degree: r.u32()?,
            c: r.f64()?,
        },
        3 => Kernel::Laplacian { gamma: r.f64()? },
        _ => return Err(WireError::Invalid("kernel tag")),
    })
}

/// Newtype to give [`SpanRecord`] a wire form without dasc-obs
/// depending on dasc-net (obs stays std-only by design).
struct WireSpan(SpanRecord);

impl Wire for WireSpan {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.0.id);
        match self.0.parent {
            Some(p) => {
                w.put_bool(true);
                w.put_u64(p);
            }
            None => w.put_bool(false),
        }
        w.put_str(&self.0.name);
        w.put_u64(self.0.thread);
        w.put_u64(self.0.start_us);
        w.put_u64(self.0.dur_us);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let id = r.u64()?;
        let parent = if r.bool()? { Some(r.u64()?) } else { None };
        Ok(WireSpan(SpanRecord {
            id,
            parent,
            name: r.str()?,
            thread: r.u64()?,
            start_us: r.u64()?,
            dur_us: r.u64()?,
        }))
    }
}

fn encode_spans(spans: &[SpanRecord], w: &mut WireWriter) {
    spans
        .iter()
        .map(|s| WireSpan(s.clone()))
        .collect::<Vec<_>>()
        .encode(w);
}

fn decode_spans(r: &mut WireReader<'_>) -> Result<Vec<SpanRecord>, WireError> {
    Ok(Vec::<WireSpan>::decode(r)?
        .into_iter()
        .map(|s| s.0)
        .collect())
}

/// Wire form of a [`MetricsSnapshot`]. Histogram buckets ship sparsely
/// (`(index, count)` pairs) — most of the 40 log₂ buckets are empty.
/// Gauges are `i64`, bit-cast through `u64` (the wire layer is
/// little-endian two's-complement either way).
fn encode_metrics(m: &MetricsSnapshot, w: &mut WireWriter) {
    w.put_u32(m.counters.len() as u32);
    for (name, v) in &m.counters {
        w.put_str(name);
        w.put_u64(*v);
    }
    w.put_u32(m.gauges.len() as u32);
    for (name, v) in &m.gauges {
        w.put_str(name);
        w.put_u64(*v as u64);
    }
    w.put_u32(m.histograms.len() as u32);
    for (name, h) in &m.histograms {
        w.put_str(name);
        w.put_u64(h.count);
        w.put_u64(h.sum);
        let filled: Vec<(u8, u64)> = h
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u8, c))
            .collect();
        w.put_u32(filled.len() as u32);
        for (i, c) in filled {
            w.put_u8(i);
            w.put_u64(c);
        }
    }
}

fn decode_metrics(r: &mut WireReader<'_>) -> Result<MetricsSnapshot, WireError> {
    let mut m = MetricsSnapshot::default();
    for _ in 0..r.seq_len()? {
        let name = r.str()?;
        m.counters.insert(name, r.u64()?);
    }
    for _ in 0..r.seq_len()? {
        let name = r.str()?;
        m.gauges.insert(name, r.u64()? as i64);
    }
    for _ in 0..r.seq_len()? {
        let name = r.str()?;
        let count = r.u64()?;
        let sum = r.u64()?;
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for _ in 0..r.seq_len()? {
            let i = r.u8()? as usize;
            if i >= HISTOGRAM_BUCKETS {
                return Err(WireError::Invalid("histogram bucket index"));
            }
            buckets[i] = r.u64()?;
        }
        m.histograms.insert(
            name,
            HistogramSnapshot {
                count,
                sum,
                buckets,
            },
        );
    }
    Ok(m)
}

/// Newtype to give [`DatasetManifest`] a wire form without dasc-store
/// depending on dasc-net (the store's own serialization is its on-disk
/// format, which carries magic bytes and a self-hash the wire form
/// doesn't need — tasks already travel inside checksummed frames).
struct WireManifest(DatasetManifest);

impl Wire for WireManifest {
    fn encode(&self, w: &mut WireWriter) {
        let m = &self.0;
        w.put_u64(m.content_hash);
        w.put_u64(m.n);
        w.put_u64(m.dim);
        w.put_bool(m.has_labels);
        w.put_u64(m.shard_rows);
        w.put_u32(m.shards.len() as u32);
        for s in &m.shards {
            w.put_u64(s.rows);
            w.put_u64(s.byte_len);
            w.put_u64(s.checksum);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let content_hash = r.u64()?;
        let n = r.u64()?;
        let dim = r.u64()?;
        let has_labels = r.bool()?;
        let shard_rows = r.u64()?;
        let count = r.seq_len()?;
        let mut shards = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            shards.push(ShardMeta {
                rows: r.u64()?,
                byte_len: r.u64()?,
                checksum: r.u64()?,
            });
        }
        Ok(WireManifest(DatasetManifest {
            content_hash,
            n,
            dim,
            has_labels,
            shard_rows,
            shards,
        }))
    }
}

/// Newtype to give [`HashPlane`] a wire form without dasc-lsh depending
/// on dasc-net.
struct WirePlane(HashPlane);

impl Wire for WirePlane {
    fn encode(&self, w: &mut WireWriter) {
        w.put_usize(self.0.dimension);
        w.put_f64(self.0.threshold);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(WirePlane(HashPlane {
            dimension: r.usize()?,
            threshold: r.f64()?,
        }))
    }
}

impl Wire for Task {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.job_id);
        w.put_u64(self.task_id);
        w.put_u32(self.attempt);
        w.put_u64(self.trace_parent);
        match &self.kind {
            TaskKind::MapSignatures {
                num_bits,
                planes,
                start,
                points,
            } => {
                w.put_u8(0);
                w.put_usize(*num_bits);
                planes
                    .iter()
                    .map(|&p| WirePlane(p))
                    .collect::<Vec<_>>()
                    .encode(w);
                w.put_usize(*start);
                points.encode(w);
            }
            TaskKind::ReduceBucket {
                bucket_id,
                ki,
                kernel,
                seed,
                lanczos_threshold,
                members,
                points,
            } => {
                w.put_u8(1);
                w.put_usize(*bucket_id);
                w.put_usize(*ki);
                encode_kernel(kernel, w);
                w.put_u64(*seed);
                w.put_usize(*lanczos_threshold);
                members.encode(w);
                points.encode(w);
            }
            TaskKind::MapSignaturesRef {
                num_bits,
                planes,
                manifest,
                start,
                len,
            } => {
                w.put_u8(2);
                w.put_usize(*num_bits);
                planes
                    .iter()
                    .map(|&p| WirePlane(p))
                    .collect::<Vec<_>>()
                    .encode(w);
                WireManifest(manifest.clone()).encode(w);
                w.put_usize(*start);
                w.put_usize(*len);
            }
            TaskKind::ReduceBucketRef {
                bucket_id,
                ki,
                kernel,
                seed,
                lanczos_threshold,
                manifest,
                members,
            } => {
                w.put_u8(3);
                w.put_usize(*bucket_id);
                w.put_usize(*ki);
                encode_kernel(kernel, w);
                w.put_u64(*seed);
                w.put_usize(*lanczos_threshold);
                WireManifest(manifest.clone()).encode(w);
                members.encode(w);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let job_id = r.u64()?;
        let task_id = r.u64()?;
        let attempt = r.u32()?;
        let trace_parent = r.u64()?;
        let kind = match r.u8()? {
            0 => TaskKind::MapSignatures {
                num_bits: r.usize()?,
                planes: Vec::<WirePlane>::decode(r)?
                    .into_iter()
                    .map(|p| p.0)
                    .collect(),
                start: r.usize()?,
                points: Vec::decode(r)?,
            },
            1 => TaskKind::ReduceBucket {
                bucket_id: r.usize()?,
                ki: r.usize()?,
                kernel: decode_kernel(r)?,
                seed: r.u64()?,
                lanczos_threshold: r.usize()?,
                members: Vec::decode(r)?,
                points: Vec::decode(r)?,
            },
            2 => TaskKind::MapSignaturesRef {
                num_bits: r.usize()?,
                planes: Vec::<WirePlane>::decode(r)?
                    .into_iter()
                    .map(|p| p.0)
                    .collect(),
                manifest: WireManifest::decode(r)?.0,
                start: r.usize()?,
                len: r.usize()?,
            },
            3 => TaskKind::ReduceBucketRef {
                bucket_id: r.usize()?,
                ki: r.usize()?,
                kernel: decode_kernel(r)?,
                seed: r.u64()?,
                lanczos_threshold: r.usize()?,
                manifest: WireManifest::decode(r)?.0,
                members: Vec::decode(r)?,
            },
            _ => return Err(WireError::Invalid("task kind tag")),
        };
        Ok(Task {
            job_id,
            task_id,
            attempt,
            trace_parent,
            kind,
        })
    }
}

impl Wire for TaskOutput {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            TaskOutput::MapSignatures(groups) => {
                w.put_u8(0);
                groups.encode(w);
            }
            TaskOutput::ReduceBucket(records) => {
                w.put_u8(1);
                records.encode(w);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => TaskOutput::MapSignatures(Vec::decode(r)?),
            1 => TaskOutput::ReduceBucket(Vec::decode(r)?),
            _ => return Err(WireError::Invalid("task output tag")),
        })
    }
}

impl Wire for JobData {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            JobData::Inline { points } => {
                w.put_u8(0);
                points.encode(w);
            }
            JobData::Ref { path, content_hash } => {
                w.put_u8(1);
                w.put_str(path);
                w.put_u64(*content_hash);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => JobData::Inline {
                points: Vec::decode(r)?,
            },
            1 => JobData::Ref {
                path: r.str()?,
                content_hash: r.u64()?,
            },
            _ => return Err(WireError::Invalid("job data tag")),
        })
    }
}

impl Wire for JobSpec {
    fn encode(&self, w: &mut WireWriter) {
        self.data.encode(w);
        w.put_usize(self.k);
        encode_kernel(&self.kernel, w);
        w.put_usize(self.num_bits);
        w.put_u64(self.seed);
        w.put_bool(self.consolidate);
        w.put_bool(self.collect_trace);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(JobSpec {
            data: JobData::decode(r)?,
            k: r.usize()?,
            kernel: decode_kernel(r)?,
            num_bits: r.usize()?,
            seed: r.u64()?,
            consolidate: r.bool()?,
            collect_trace: r.bool()?,
        })
    }
}

impl Wire for JobOutcome {
    fn encode(&self, w: &mut WireWriter) {
        self.assignments.encode(w);
        w.put_usize(self.num_clusters);
        w.put_usize(self.num_buckets);
        w.put_u64(self.workers_used);
        w.put_u64(self.stage1_us);
        w.put_u64(self.stage2_us);
        w.put_u64(self.shuffle_records);
        w.put_u64(self.shuffle_bytes);
        w.put_u64(self.task_retries);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(JobOutcome {
            assignments: Vec::decode(r)?,
            num_clusters: r.usize()?,
            num_buckets: r.usize()?,
            workers_used: r.u64()?,
            stage1_us: r.u64()?,
            stage2_us: r.u64()?,
            shuffle_records: r.u64()?,
            shuffle_bytes: r.u64()?,
            task_retries: r.u64()?,
        })
    }
}

impl Msg {
    /// The frame tag this message travels under.
    pub fn msg_type(&self) -> MsgType {
        match self {
            Msg::Register { .. } => MsgType::Register,
            Msg::RegisterAck { .. } => MsgType::RegisterAck,
            Msg::Heartbeat { .. } => MsgType::Heartbeat,
            Msg::HeartbeatAck => MsgType::HeartbeatAck,
            Msg::RequestTask { .. } => MsgType::RequestTask,
            Msg::AssignTask { .. } => MsgType::AssignTask,
            Msg::NoTask { .. } => MsgType::NoTask,
            Msg::TaskDone { .. } => MsgType::TaskDone,
            Msg::TaskAck => MsgType::TaskAck,
            Msg::SubmitJob { .. } => MsgType::SubmitJob,
            Msg::JobAccepted { .. } => MsgType::JobAccepted,
            Msg::PollJob { .. } => MsgType::PollJob,
            Msg::JobPending { .. } => MsgType::JobPending,
            Msg::JobResult { .. } => MsgType::JobResult,
            Msg::JobError { .. } => MsgType::JobError,
            Msg::MetricsRequest => MsgType::MetricsRequest,
            Msg::MetricsReply { .. } => MsgType::MetricsReply,
            Msg::TaskFailed { .. } => MsgType::TaskFailed,
            Msg::TraceRequest { .. } => MsgType::TraceRequest,
            Msg::TraceReply { .. } => MsgType::TraceReply,
            Msg::ShardRequest { .. } => MsgType::ShardRequest,
            Msg::ShardReply { .. } => MsgType::ShardReply,
        }
    }

    /// Encode the body (frame payload, without the frame header).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            Msg::Register { name } => w.put_str(name),
            Msg::RegisterAck {
                worker_id,
                heartbeat_interval_ms,
            } => {
                w.put_u64(*worker_id);
                w.put_u64(*heartbeat_interval_ms);
            }
            Msg::Heartbeat { worker_id, metrics } => {
                w.put_u64(*worker_id);
                encode_metrics(metrics, &mut w);
            }
            Msg::HeartbeatAck | Msg::TaskAck | Msg::MetricsRequest => {}
            Msg::RequestTask { worker_id } => w.put_u64(*worker_id),
            Msg::AssignTask { task } => task.encode(&mut w),
            Msg::NoTask { backoff_ms } => w.put_u64(*backoff_ms),
            Msg::TaskDone {
                worker_id,
                task_id,
                output,
                spans,
            } => {
                w.put_u64(*worker_id);
                w.put_u64(*task_id);
                output.encode(&mut w);
                encode_spans(spans, &mut w);
            }
            Msg::SubmitJob { spec } => spec.encode(&mut w),
            Msg::JobAccepted { job_id } => w.put_u64(*job_id),
            Msg::PollJob { job_id } => w.put_u64(*job_id),
            Msg::JobPending { stage, done, total } => {
                w.put_u8(*stage);
                w.put_u64(*done);
                w.put_u64(*total);
            }
            Msg::JobResult { outcome } => outcome.encode(&mut w),
            Msg::JobError { message } => w.put_str(message),
            Msg::MetricsReply { text } => w.put_str(text),
            Msg::TaskFailed {
                worker_id,
                task_id,
                error,
            } => {
                w.put_u64(*worker_id);
                w.put_u64(*task_id);
                w.put_str(error);
            }
            Msg::TraceRequest { job_id } => w.put_u64(*job_id),
            Msg::TraceReply { json } => w.put_str(json),
            Msg::ShardRequest { dataset, shard } => {
                w.put_u64(*dataset);
                w.put_u32(*shard);
            }
            Msg::ShardReply { bytes } => w.put_blob(bytes),
        }
        w.into_vec()
    }

    /// Decode a frame back into a message. Rejects unknown tags,
    /// malformed bodies, and trailing bytes.
    pub fn decode_frame(msg_type: u16, payload: &[u8]) -> Result<Msg, WireError> {
        let tag = MsgType::from_u16(msg_type).ok_or(WireError::Invalid("unknown msg_type"))?;
        let mut r = WireReader::new(payload);
        let msg = match tag {
            MsgType::Register => Msg::Register { name: r.str()? },
            MsgType::RegisterAck => Msg::RegisterAck {
                worker_id: r.u64()?,
                heartbeat_interval_ms: r.u64()?,
            },
            MsgType::Heartbeat => Msg::Heartbeat {
                worker_id: r.u64()?,
                metrics: decode_metrics(&mut r)?,
            },
            MsgType::HeartbeatAck => Msg::HeartbeatAck,
            MsgType::RequestTask => Msg::RequestTask {
                worker_id: r.u64()?,
            },
            MsgType::AssignTask => Msg::AssignTask {
                task: Task::decode(&mut r)?,
            },
            MsgType::NoTask => Msg::NoTask {
                backoff_ms: r.u64()?,
            },
            MsgType::TaskDone => Msg::TaskDone {
                worker_id: r.u64()?,
                task_id: r.u64()?,
                output: TaskOutput::decode(&mut r)?,
                spans: decode_spans(&mut r)?,
            },
            MsgType::TaskAck => Msg::TaskAck,
            MsgType::SubmitJob => Msg::SubmitJob {
                spec: JobSpec::decode(&mut r)?,
            },
            MsgType::JobAccepted => Msg::JobAccepted { job_id: r.u64()? },
            MsgType::PollJob => Msg::PollJob { job_id: r.u64()? },
            MsgType::JobPending => Msg::JobPending {
                stage: r.u8()?,
                done: r.u64()?,
                total: r.u64()?,
            },
            MsgType::JobResult => Msg::JobResult {
                outcome: JobOutcome::decode(&mut r)?,
            },
            MsgType::JobError => Msg::JobError { message: r.str()? },
            MsgType::MetricsRequest => Msg::MetricsRequest,
            MsgType::MetricsReply => Msg::MetricsReply { text: r.str()? },
            MsgType::TaskFailed => Msg::TaskFailed {
                worker_id: r.u64()?,
                task_id: r.u64()?,
                error: r.str()?,
            },
            MsgType::TraceRequest => Msg::TraceRequest { job_id: r.u64()? },
            MsgType::TraceReply => Msg::TraceReply { json: r.str()? },
            MsgType::ShardRequest => Msg::ShardRequest {
                dataset: r.u64()?,
                shard: r.u32()?,
            },
            MsgType::ShardReply => Msg::ShardReply { bytes: r.blob()? },
        };
        r.finish()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Msg) {
        let payload = msg.encode_payload();
        let back = Msg::decode_frame(msg.msg_type() as u16, &payload).expect("decode");
        assert_eq!(back, msg);
    }

    #[test]
    fn every_message_variant_roundtrips() {
        let map_task = Task {
            job_id: 1,
            task_id: 42,
            attempt: 1,
            trace_parent: 3,
            kind: TaskKind::MapSignatures {
                num_bits: 4,
                planes: vec![
                    HashPlane {
                        dimension: 3,
                        threshold: 0.5,
                    },
                    HashPlane {
                        dimension: 0,
                        threshold: -1.25,
                    },
                ],
                start: 128,
                points: vec![vec![0.1, 0.2], vec![0.3, 0.4]],
            },
        };
        let reduce_task = Task {
            job_id: 1,
            task_id: 43,
            attempt: 2,
            trace_parent: 0,
            kind: TaskKind::ReduceBucket {
                bucket_id: 7,
                ki: 2,
                kernel: Kernel::Gaussian { sigma: 0.2 },
                seed: 0xDA5C,
                lanczos_threshold: 512,
                members: vec![5, 9, 11],
                points: vec![vec![0.0; 2]; 3],
            },
        };
        let manifest = DatasetManifest {
            content_hash: 0xFEED_BEEF,
            n: 10,
            dim: 2,
            has_labels: true,
            shard_rows: 4,
            shards: vec![
                ShardMeta {
                    rows: 4,
                    byte_len: 200,
                    checksum: 11,
                },
                ShardMeta {
                    rows: 4,
                    byte_len: 200,
                    checksum: 22,
                },
                ShardMeta {
                    rows: 2,
                    byte_len: 120,
                    checksum: 33,
                },
            ],
        };
        let map_ref_task = Task {
            job_id: 2,
            task_id: 44,
            attempt: 1,
            trace_parent: 5,
            kind: TaskKind::MapSignaturesRef {
                num_bits: 4,
                planes: vec![HashPlane {
                    dimension: 1,
                    threshold: 0.25,
                }],
                manifest: manifest.clone(),
                start: 4,
                len: 6,
            },
        };
        let reduce_ref_task = Task {
            job_id: 2,
            task_id: 45,
            attempt: 3,
            trace_parent: 0,
            kind: TaskKind::ReduceBucketRef {
                bucket_id: 1,
                ki: 2,
                kernel: Kernel::Gaussian { sigma: 0.2 },
                seed: 0xDA5C,
                lanczos_threshold: 512,
                manifest,
                members: vec![0, 3, 8, 9],
            },
        };
        let mut worker_metrics = MetricsSnapshot::default();
        worker_metrics
            .counters
            .insert("dasc_dist_tasks_completed_total".into(), 4);
        worker_metrics.gauges.insert("depth".into(), -3);
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        buckets[3] = 2;
        buckets[HISTOGRAM_BUCKETS - 1] = 1;
        worker_metrics.histograms.insert(
            "dasc_dist_task_duration_us{stage=\"map\"}".into(),
            HistogramSnapshot {
                count: 3,
                sum: 42,
                buckets,
            },
        );
        for msg in [
            Msg::Register { name: "w-1".into() },
            Msg::RegisterAck {
                worker_id: 9,
                heartbeat_interval_ms: 500,
            },
            Msg::Heartbeat {
                worker_id: 9,
                metrics: MetricsSnapshot::default(),
            },
            Msg::Heartbeat {
                worker_id: 9,
                metrics: worker_metrics,
            },
            Msg::HeartbeatAck,
            Msg::RequestTask { worker_id: 9 },
            Msg::AssignTask { task: map_task },
            Msg::AssignTask { task: reduce_task },
            Msg::AssignTask { task: map_ref_task },
            Msg::AssignTask {
                task: reduce_ref_task,
            },
            Msg::NoTask { backoff_ms: 250 },
            Msg::TaskDone {
                worker_id: 9,
                task_id: 42,
                output: TaskOutput::MapSignatures(vec![(0b1010, vec![128, 130]), (0, vec![129])]),
                spans: vec![
                    SpanRecord {
                        id: 1,
                        parent: None,
                        name: "dist.task.map".into(),
                        thread: 2,
                        start_us: 0,
                        dur_us: 1500,
                    },
                    SpanRecord {
                        id: 2,
                        parent: Some(1),
                        name: "dist.task.map.hash".into(),
                        thread: 2,
                        start_us: 10,
                        dur_us: 1400,
                    },
                ],
            },
            Msg::TaskDone {
                worker_id: 9,
                task_id: 43,
                output: TaskOutput::ReduceBucket(vec![(5, 7, 0), (9, 7, 1), (11, 7, 0)]),
                spans: vec![],
            },
            Msg::TaskAck,
            Msg::SubmitJob {
                spec: JobSpec {
                    data: JobData::Inline {
                        points: vec![vec![1.0, 2.0], vec![3.0, 4.0]],
                    },
                    k: 2,
                    kernel: Kernel::Laplacian { gamma: 1.5 },
                    num_bits: 0,
                    seed: 0xDA5C,
                    consolidate: true,
                    collect_trace: true,
                },
            },
            Msg::SubmitJob {
                spec: JobSpec {
                    data: JobData::Ref {
                        path: "/data/wiki.dstr".into(),
                        content_hash: 0xFEED_BEEF,
                    },
                    k: 2,
                    kernel: Kernel::Gaussian { sigma: 0.2 },
                    num_bits: 5,
                    seed: 0xDA5C,
                    consolidate: true,
                    collect_trace: false,
                },
            },
            Msg::ShardRequest {
                dataset: 0xFEED_BEEF,
                shard: 2,
            },
            Msg::ShardReply {
                bytes: vec![0xD5, 0x48, 0x44, 0x00, 1, 2, 3],
            },
            Msg::ShardReply { bytes: vec![] },
            Msg::JobAccepted { job_id: 3 },
            Msg::PollJob { job_id: 3 },
            Msg::JobPending {
                stage: stage::MAP,
                done: 2,
                total: 8,
            },
            Msg::JobResult {
                outcome: JobOutcome {
                    assignments: vec![0, 1, 1, 0],
                    num_clusters: 2,
                    num_buckets: 3,
                    workers_used: 2,
                    stage1_us: 1000,
                    stage2_us: 2000,
                    shuffle_records: 4,
                    shuffle_bytes: 96,
                    task_retries: 1,
                },
            },
            Msg::JobError {
                message: "task 42 exhausted 4 attempts".into(),
            },
            Msg::MetricsRequest,
            Msg::MetricsReply {
                text: "# TYPE dasc_dist_rpcs_total counter\n".into(),
            },
            Msg::TaskFailed {
                worker_id: 9,
                task_id: 42,
                error: "panic: boom".into(),
            },
            Msg::TraceRequest { job_id: 3 },
            Msg::TraceReply {
                json: "[\n{\"name\":\"process_name\"}\n]\n".into(),
            },
        ] {
            roundtrip(msg);
        }
    }

    #[test]
    fn all_kernels_roundtrip() {
        for kernel in [
            Kernel::Gaussian { sigma: 0.7 },
            Kernel::Linear,
            Kernel::Polynomial { degree: 3, c: 1.0 },
            Kernel::Laplacian { gamma: 0.3 },
        ] {
            roundtrip(Msg::SubmitJob {
                spec: JobSpec {
                    data: JobData::Inline {
                        points: vec![vec![0.5]],
                    },
                    k: 1,
                    kernel,
                    num_bits: 3,
                    seed: 1,
                    consolidate: false,
                    collect_trace: false,
                },
            });
        }
    }

    #[test]
    fn unknown_tags_and_trailing_bytes_rejected() {
        assert_eq!(
            Msg::decode_frame(999, &[]),
            Err(WireError::Invalid("unknown msg_type"))
        );
        let mut payload = Msg::PollJob { job_id: 1 }.encode_payload();
        payload.push(7);
        assert_eq!(
            Msg::decode_frame(MsgType::PollJob as u16, &payload),
            Err(WireError::Trailing(1))
        );
    }

    #[test]
    fn heartbeat_with_out_of_range_bucket_index_rejected() {
        let mut w = WireWriter::new();
        w.put_u64(9); // worker_id
        w.put_u32(0); // counters
        w.put_u32(0); // gauges
        w.put_u32(1); // one histogram
        w.put_str("lat");
        w.put_u64(1); // count
        w.put_u64(5); // sum
        w.put_u32(1); // one filled bucket...
        w.put_u8(HISTOGRAM_BUCKETS as u8); // ...one past the last index
        w.put_u64(1);
        assert_eq!(
            Msg::decode_frame(MsgType::Heartbeat as u16, &w.into_vec()),
            Err(WireError::Invalid("histogram bucket index"))
        );
    }

    #[test]
    fn truncated_bodies_rejected() {
        let payload = Msg::RegisterAck {
            worker_id: 1,
            heartbeat_interval_ms: 500,
        }
        .encode_payload();
        for cut in 0..payload.len() {
            assert!(
                Msg::decode_frame(MsgType::RegisterAck as u16, &payload[..cut]).is_err(),
                "cut={cut}"
            );
        }
    }
}
