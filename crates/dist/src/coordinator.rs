//! The coordinator: job tracker + name node for the dist runtime.
//!
//! One `dasc-net` server thread-set handles all RPCs; each submitted
//! job gets a runner thread that replays the exact in-process
//! `Dasc::train_distributed` jobflow, but with the map and reduce
//! bodies executed by remote workers:
//!
//! 1. fit the LSH signature model locally (cheap, needs the whole
//!    dataset's histograms — same as the in-process path);
//! 2. stage 1: one `MapSignatures` task per `split_ranges` slice;
//! 3. between-stage merge: rebuild per-point signatures, form and
//!    merge buckets (identical code to the in-process engine);
//! 4. stage 2: one `ReduceBucket` task per merged bucket;
//! 5. stitch + consolidate locally via the shared `dasc-core` helpers.
//!
//! Because every numerical step is the same shared function the
//! in-process engine calls, the final assignments are bit-identical to
//! `Dasc::run_distributed` for the same `JobSpec` — regardless of
//! worker count, task interleaving, or mid-job worker deaths.
//!
//! Fault tolerance is Hadoop-shaped: workers heartbeat; a worker silent
//! past `worker_liveness_timeout` (or whose task connection drops) is
//! declared dead and its in-flight tasks re-queue with `attempt + 1`;
//! a task exhausting `max_task_attempts` fails the job. Stale results
//! from resurrected attempts are ignored unless the reporting worker
//! still owns the in-flight entry.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io;
use std::net::SocketAddr;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use dasc_core::{bucket_cluster_count, consolidate, stitch_distributed, Clustering};
use dasc_lsh::{BucketSet, LshConfig, Signature, SignatureModel};
use dasc_mapreduce::{split_ranges, ClusterConfig};
use dasc_net::{ConnId, Server, ServerConfig, ServerHandle, Service};
use dasc_obs::span;

use crate::proto::{stage, JobOutcome, JobSpec, Msg, Task, TaskKind, TaskOutput};

/// A running coordinator.
pub struct Coordinator {
    server: ServerHandle<CoordinatorService>,
}

impl Coordinator {
    /// Bind `addr` (port 0 picks a free port) and start serving.
    pub fn start(addr: &str, cluster: ClusterConfig) -> io::Result<Coordinator> {
        let service = CoordinatorService {
            state: Arc::new(SharedState {
                inner: Mutex::new(State::default()),
                changed: Condvar::new(),
                cluster,
            }),
        };
        let server = Server::new(
            service,
            ServerConfig {
                read_timeout: Duration::from_millis(200),
            },
        )
        .start(addr)?;
        Ok(Coordinator { server })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.server.addr()
    }

    /// Block until the server dies on its own (daemon mode).
    pub fn wait(self) {
        self.server.wait();
    }

    /// Graceful shutdown: stop accepting, join all threads. Running job
    /// runners observe the dropped connections and fail their stages.
    pub fn shutdown(self) {
        self.server.service().state.shutdown();
        self.server.shutdown();
    }

    /// Workers currently registered and live (test/diagnostic hook).
    pub fn live_workers(&self) -> usize {
        let state = self.server.service().state.inner.lock().expect("state");
        state.workers.len()
    }
}

struct CoordinatorService {
    state: Arc<SharedState>,
}

struct SharedState {
    inner: Mutex<State>,
    changed: Condvar,
    cluster: ClusterConfig,
}

#[derive(Default)]
struct State {
    shutting_down: bool,
    next_worker_id: u64,
    next_job_id: u64,
    next_task_id: u64,
    workers: HashMap<u64, WorkerInfo>,
    /// Tasks ready to hand to the next `RequestTask`.
    pending: VecDeque<Task>,
    /// task_id → (worker running it, the task, when it started).
    in_flight: HashMap<u64, InFlight>,
    /// task_id → attempts consumed so far (pending + in-flight).
    attempts: HashMap<u64, u32>,
    /// Completed task outputs awaiting pickup by their job runner,
    /// keyed by task_id, with the completing worker recorded.
    outputs: HashMap<u64, (u64, TaskOutput)>,
    /// task_id → terminal failure message (attempt budget exhausted).
    dead_tasks: HashMap<u64, String>,
    jobs: HashMap<u64, JobState>,
}

struct WorkerInfo {
    #[allow(dead_code)] // surfaced in logs/metrics labels later
    name: String,
    last_seen: Instant,
    /// The connection the worker last pulled a task on; if it drops,
    /// the worker is declared dead immediately.
    task_conn: Option<ConnId>,
}

struct InFlight {
    worker_id: u64,
    task: Task,
}

enum JobState {
    Running { stage: u8, done: u64, total: u64 },
    Done(JobOutcome),
    Failed(String),
}

impl SharedState {
    fn shutdown(&self) {
        let mut state = self.inner.lock().expect("state");
        state.shutting_down = true;
        self.changed.notify_all();
    }

    /// Declare a worker dead: drop it and re-queue its in-flight tasks
    /// (or fail them if out of attempts).
    fn declare_lost(&self, state: &mut State, worker_id: u64, why: &str) {
        if state.workers.remove(&worker_id).is_none() {
            return;
        }
        dasc_obs::global().inc("dasc_dist_workers_lost_total", 1);
        let orphaned: Vec<u64> = state
            .in_flight
            .iter()
            .filter(|(_, f)| f.worker_id == worker_id)
            .map(|(&tid, _)| tid)
            .collect();
        for task_id in orphaned {
            let inflight = state.in_flight.remove(&task_id).expect("in-flight entry");
            self.requeue(state, inflight.task, format!("worker {worker_id} {why}"));
        }
        self.changed.notify_all();
    }

    /// Put a task back in the queue with `attempt + 1`, or mark it dead
    /// if the retry budget is spent.
    fn requeue(&self, state: &mut State, mut task: Task, why: String) {
        let attempts = state.attempts.get(&task.task_id).copied().unwrap_or(1);
        if attempts >= self.cluster.max_task_attempts as u32 {
            state.dead_tasks.insert(
                task.task_id,
                format!(
                    "task {} failed after {attempts} attempts: {why}",
                    task.task_id
                ),
            );
            return;
        }
        dasc_obs::global().inc("dasc_dist_task_retries_total", 1);
        task.attempt = attempts + 1;
        state.attempts.insert(task.task_id, attempts + 1);
        state.pending.push_back(task);
    }

    /// Enqueue `tasks` and block until all are complete or any is
    /// terminally dead. Returns outputs keyed by task_id, plus the set
    /// of workers that completed at least one of them.
    fn run_stage(
        &self,
        job_id: u64,
        stage_tag: u8,
        tasks: Vec<Task>,
    ) -> Result<(HashMap<u64, TaskOutput>, HashSet<u64>), String> {
        let task_ids: Vec<u64> = tasks.iter().map(|t| t.task_id).collect();
        {
            let mut state = self.inner.lock().expect("state");
            if let Some(JobState::Running { stage, done, total }) = state.jobs.get_mut(&job_id) {
                *stage = stage_tag;
                *done = 0;
                *total = task_ids.len() as u64;
            }
            for task in tasks {
                state.attempts.insert(task.task_id, 1);
                state.pending.push_back(task);
            }
            self.changed.notify_all();
        }

        let mut outputs = HashMap::new();
        let mut workers_used = HashSet::new();
        let mut state = self.inner.lock().expect("state");
        loop {
            for &tid in &task_ids {
                if let Some((worker, out)) = state.outputs.remove(&tid) {
                    outputs.insert(tid, out);
                    workers_used.insert(worker);
                }
                if let Some(err) = state.dead_tasks.get(&tid) {
                    let err = err.clone();
                    self.abandon_stage(&mut state, &task_ids);
                    return Err(err);
                }
            }
            if let Some(JobState::Running { done, .. }) = state.jobs.get_mut(&job_id) {
                *done = outputs.len() as u64;
            }
            if outputs.len() == task_ids.len() {
                return Ok((outputs, workers_used));
            }
            if state.shutting_down {
                self.abandon_stage(&mut state, &task_ids);
                return Err("coordinator shutting down".to_string());
            }
            let (next, _) = self
                .changed
                .wait_timeout(state, Duration::from_millis(100))
                .expect("state");
            state = next;
            // The sweep needs the lock we hold; do it inline.
            let timeout = self.cluster.worker_liveness_timeout;
            let silent: Vec<u64> = state
                .workers
                .iter()
                .filter(|(_, w)| w.last_seen.elapsed() > timeout)
                .map(|(&id, _)| id)
                .collect();
            for id in silent {
                self.declare_lost(&mut state, id, "missed heartbeats");
            }
        }
    }

    /// Drop a failed stage's remaining bookkeeping so nothing leaks.
    fn abandon_stage(&self, state: &mut State, task_ids: &[u64]) {
        let ids: HashSet<u64> = task_ids.iter().copied().collect();
        state.pending.retain(|t| !ids.contains(&t.task_id));
        state.in_flight.retain(|tid, _| !ids.contains(tid));
        for tid in task_ids {
            state.attempts.remove(tid);
            state.outputs.remove(tid);
            state.dead_tasks.remove(tid);
        }
    }

    fn alloc_task_ids(&self, n: usize) -> u64 {
        let mut state = self.inner.lock().expect("state");
        let first = state.next_task_id;
        state.next_task_id += n as u64;
        first
    }

    fn set_job_state(&self, job_id: u64, js: JobState) {
        let mut state = self.inner.lock().expect("state");
        state.jobs.insert(job_id, js);
        self.changed.notify_all();
    }
}

impl Service for CoordinatorService {
    fn handle(&self, conn: ConnId, msg_type: u16, payload: &[u8]) -> Option<(u16, Vec<u8>)> {
        let reg = dasc_obs::global();
        reg.inc("dasc_dist_rpcs_total", 1);
        let msg = match Msg::decode_frame(msg_type, payload) {
            Ok(m) => m,
            Err(e) => {
                let reply = Msg::JobError {
                    message: format!("protocol error: {e}"),
                };
                return Some((reply.msg_type() as u16, reply.encode_payload()));
            }
        };
        let reply = self.dispatch(conn, msg);
        Some((reply.msg_type() as u16, reply.encode_payload()))
    }

    fn on_disconnect(&self, conn: ConnId) {
        let shared = Arc::clone(&self.state);
        let mut state = shared.inner.lock().expect("state");
        let lost: Vec<u64> = state
            .workers
            .iter()
            .filter(|(_, w)| w.task_conn == Some(conn))
            .map(|(&id, _)| id)
            .collect();
        for id in lost {
            shared.declare_lost(&mut state, id, "dropped its task connection");
        }
    }
}

impl CoordinatorService {
    fn dispatch(&self, conn: ConnId, msg: Msg) -> Msg {
        let shared = &self.state;
        let reg = dasc_obs::global();
        match msg {
            Msg::Register { name } => {
                let mut state = shared.inner.lock().expect("state");
                state.next_worker_id += 1;
                let worker_id = state.next_worker_id;
                state.workers.insert(
                    worker_id,
                    WorkerInfo {
                        name,
                        last_seen: Instant::now(),
                        task_conn: None,
                    },
                );
                reg.inc("dasc_dist_workers_registered_total", 1);
                Msg::RegisterAck {
                    worker_id,
                    heartbeat_interval_ms: shared.cluster.heartbeat_interval.as_millis() as u64,
                }
            }
            Msg::Heartbeat { worker_id } => {
                reg.inc("dasc_dist_heartbeats_total", 1);
                let mut state = shared.inner.lock().expect("state");
                if let Some(w) = state.workers.get_mut(&worker_id) {
                    let lag = w.last_seen.elapsed();
                    reg.observe("dasc_dist_heartbeat_lag_us", lag.as_micros() as u64);
                    w.last_seen = Instant::now();
                }
                Msg::HeartbeatAck
            }
            Msg::RequestTask { worker_id } => {
                let mut state = shared.inner.lock().expect("state");
                let Some(w) = state.workers.get_mut(&worker_id) else {
                    // Unknown (e.g. previously declared dead): make it
                    // back off; re-registration is its own call.
                    return Msg::NoTask {
                        backoff_ms: shared.cluster.heartbeat_interval.as_millis() as u64,
                    };
                };
                w.last_seen = Instant::now();
                w.task_conn = Some(conn);
                match state.pending.pop_front() {
                    Some(task) => {
                        reg.inc("dasc_dist_tasks_assigned_total", 1);
                        state.in_flight.insert(
                            task.task_id,
                            InFlight {
                                worker_id,
                                task: task.clone(),
                            },
                        );
                        Msg::AssignTask { task }
                    }
                    None => Msg::NoTask {
                        backoff_ms: shared.cluster.heartbeat_interval.as_millis() as u64 / 2,
                    },
                }
            }
            Msg::TaskDone {
                worker_id,
                task_id,
                output,
            } => {
                let mut state = shared.inner.lock().expect("state");
                if let Some(w) = state.workers.get_mut(&worker_id) {
                    w.last_seen = Instant::now();
                }
                // Only the worker that owns the in-flight entry may
                // complete it — a stale attempt from a worker already
                // declared dead (whose task was re-run elsewhere) is
                // acked and dropped.
                let owned = state
                    .in_flight
                    .get(&task_id)
                    .is_some_and(|f| f.worker_id == worker_id);
                if owned {
                    state.in_flight.remove(&task_id);
                    reg.inc("dasc_dist_tasks_completed_total", 1);
                    let (records, bytes) = output_volume(&output);
                    reg.inc("dasc_dist_shuffle_records_total", records);
                    reg.inc("dasc_dist_shuffle_bytes_total", bytes);
                    state.outputs.insert(task_id, (worker_id, output));
                    shared.changed.notify_all();
                }
                Msg::TaskAck
            }
            Msg::TaskFailed {
                worker_id,
                task_id,
                error,
            } => {
                let mut state = shared.inner.lock().expect("state");
                let owned = state
                    .in_flight
                    .get(&task_id)
                    .is_some_and(|f| f.worker_id == worker_id);
                if owned {
                    let inflight = state.in_flight.remove(&task_id).expect("owned entry");
                    shared.requeue(&mut state, inflight.task, error);
                    shared.changed.notify_all();
                }
                Msg::TaskAck
            }
            Msg::SubmitJob { spec } => {
                let job_id = {
                    let mut state = shared.inner.lock().expect("state");
                    state.next_job_id += 1;
                    let id = state.next_job_id;
                    state.jobs.insert(
                        id,
                        JobState::Running {
                            stage: stage::QUEUED,
                            done: 0,
                            total: 0,
                        },
                    );
                    id
                };
                reg.inc("dasc_dist_jobs_total", 1);
                let shared = Arc::clone(shared);
                std::thread::spawn(move || run_job(&shared, job_id, spec));
                Msg::JobAccepted { job_id }
            }
            Msg::PollJob { job_id } => {
                let state = shared.inner.lock().expect("state");
                match state.jobs.get(&job_id) {
                    Some(JobState::Running { stage, done, total }) => Msg::JobPending {
                        stage: *stage,
                        done: *done,
                        total: *total,
                    },
                    Some(JobState::Done(outcome)) => Msg::JobResult {
                        outcome: outcome.clone(),
                    },
                    Some(JobState::Failed(message)) => Msg::JobError {
                        message: message.clone(),
                    },
                    None => Msg::JobError {
                        message: format!("unknown job {job_id}"),
                    },
                }
            }
            Msg::MetricsRequest => {
                let mut snap = dasc_obs::global().snapshot();
                let state = shared.inner.lock().expect("state");
                snap.gauges.insert(
                    "dasc_dist_workers_connected".to_string(),
                    state.workers.len() as i64,
                );
                Msg::MetricsReply {
                    text: dasc_obs::prometheus::render(&snap),
                }
            }
            other => Msg::JobError {
                message: format!("unexpected message {:?} at coordinator", other.msg_type()),
            },
        }
    }
}

/// Payload accounting for the shuffle counters: records and approximate
/// wire bytes of a task output.
fn output_volume(output: &TaskOutput) -> (u64, u64) {
    match output {
        TaskOutput::MapSignatures(groups) => {
            let records: u64 = groups.iter().map(|(_, m)| m.len() as u64).sum();
            let bytes: u64 = groups.iter().map(|(_, m)| 12 + 8 * m.len() as u64).sum();
            (records, bytes)
        }
        TaskOutput::ReduceBucket(records) => (records.len() as u64, 24 * records.len() as u64),
    }
}

/// The job runner: the exact `Dasc::train_distributed` flow with map
/// and reduce bodies farmed out to workers.
fn run_job(shared: &SharedState, job_id: u64, spec: JobSpec) {
    let result = execute_job(shared, job_id, &spec);
    match result {
        Ok(outcome) => shared.set_job_state(job_id, JobState::Done(outcome)),
        Err(message) => {
            dasc_obs::global().inc("dasc_dist_jobs_failed_total", 1);
            shared.set_job_state(job_id, JobState::Failed(message));
        }
    }
}

fn execute_job(shared: &SharedState, job_id: u64, spec: &JobSpec) -> Result<JobOutcome, String> {
    let n = spec.points.len();
    if n == 0 {
        return Err("empty dataset".to_string());
    }
    if spec.k == 0 {
        return Err("k must be >= 1".to_string());
    }
    let retries_before = dasc_obs::global().counter_value("dasc_dist_task_retries_total");
    let job_span = span!("dist.job");
    let lsh = if spec.num_bits == 0 {
        LshConfig::for_dataset(n)
    } else {
        LshConfig::with_bits(spec.num_bits)
    };

    // Stage 1: fit the model locally, hash remotely.
    let stage1_span = span!("dist.stage1");
    let stage1_start = Instant::now();
    let model = SignatureModel::fit(&spec.points, &lsh);
    let ranges = split_ranges(n, &shared.cluster);
    let first_id = shared.alloc_task_ids(ranges.len());
    let map_tasks: Vec<Task> = ranges
        .iter()
        .enumerate()
        .map(|(i, &(start, len))| Task {
            job_id,
            task_id: first_id + i as u64,
            attempt: 1,
            kind: TaskKind::MapSignatures {
                num_bits: model.num_bits(),
                planes: model.planes().to_vec(),
                start,
                points: spec.points[start..start + len].to_vec(),
            },
        })
        .collect();
    let (map_outputs, workers1) = shared.run_stage(job_id, stage::MAP, map_tasks)?;
    let stage1_us = stage1_start.elapsed().as_micros() as u64;
    stage1_span.finish();

    // Between-stage merge, identical to the in-process engine.
    let m = model.num_bits();
    let mut sigs = vec![Signature::zero(m); n];
    for output in map_outputs.values() {
        let TaskOutput::MapSignatures(groups) = output else {
            return Err("map task returned reduce output".to_string());
        };
        for (bits, members) in groups {
            let s = Signature::from_bits(*bits, m);
            for &i in members {
                if i >= n {
                    return Err(format!("map output point {i} out of range"));
                }
                sigs[i] = s;
            }
        }
    }
    let buckets = BucketSet::from_signatures(&sigs).merge_with(lsh.merge_strategy, lsh.merge_p);

    // Stage 2: one reduce task per merged bucket.
    let stage2_span = span!("dist.stage2");
    let stage2_start = Instant::now();
    let first_id = shared.alloc_task_ids(buckets.len());
    let reduce_tasks: Vec<Task> = buckets
        .buckets()
        .iter()
        .enumerate()
        .map(|(bi, b)| Task {
            job_id,
            task_id: first_id + bi as u64,
            attempt: 1,
            kind: TaskKind::ReduceBucket {
                bucket_id: bi,
                ki: bucket_cluster_count(spec.k, b.members.len(), n),
                kernel: spec.kernel,
                seed: spec.seed,
                lanczos_threshold: 512,
                members: b.members.clone(),
                points: b.members.iter().map(|&i| spec.points[i].clone()).collect(),
            },
        })
        .collect();
    let (reduce_outputs, workers2) = shared.run_stage(job_id, stage::REDUCE, reduce_tasks)?;
    let stage2_us = stage2_start.elapsed().as_micros() as u64;
    stage2_span.finish();

    // Finish locally: stitch + consolidate via the shared helpers.
    if let Some(JobState::Running { stage, .. }) =
        shared.inner.lock().expect("state").jobs.get_mut(&job_id)
    {
        *stage = stage::FINISH;
    }
    let mut records = Vec::with_capacity(n);
    for output in reduce_outputs.values() {
        let TaskOutput::ReduceBucket(rs) = output else {
            return Err("reduce task returned map output".to_string());
        };
        for &(point, bucket_id, local) in rs {
            if point >= n || bucket_id >= buckets.len() {
                return Err("reduce output out of range".to_string());
            }
            records.push((point, bucket_id, local));
        }
    }
    if records.len() != n {
        return Err(format!(
            "reduce stage covered {} of {n} points",
            records.len()
        ));
    }
    let stitched = stitch_distributed(n, spec.k, &buckets.sizes(), &records);
    let clustering: Clustering = if spec.consolidate {
        consolidate(&spec.points, &stitched, spec.k, spec.seed)
    } else {
        stitched
    };
    job_span.finish();

    let (shuffle_records, shuffle_bytes) = map_outputs
        .values()
        .chain(reduce_outputs.values())
        .map(output_volume)
        .fold((0, 0), |(r, b), (r2, b2)| (r + r2, b + b2));
    let workers_used: HashSet<u64> = workers1.union(&workers2).copied().collect();
    let task_retries =
        dasc_obs::global().counter_value("dasc_dist_task_retries_total") - retries_before;
    Ok(JobOutcome {
        num_clusters: clustering.num_clusters,
        assignments: clustering.assignments,
        num_buckets: buckets.len(),
        workers_used: workers_used.len() as u64,
        stage1_us,
        stage2_us,
        shuffle_records,
        shuffle_bytes,
        task_retries,
    })
}
