//! The coordinator: job tracker + name node for the dist runtime.
//!
//! One `dasc-net` server thread-set handles all RPCs; each submitted
//! job gets a runner thread that replays the exact in-process
//! `Dasc::train_distributed` jobflow, but with the map and reduce
//! bodies executed by remote workers:
//!
//! 1. fit the LSH signature model locally (cheap, needs the whole
//!    dataset's histograms — same as the in-process path);
//! 2. stage 1: one `MapSignatures` task per `split_ranges` slice;
//! 3. between-stage merge: rebuild per-point signatures, form and
//!    merge buckets (identical code to the in-process engine);
//! 4. stage 2: one `ReduceBucket` task per merged bucket;
//! 5. stitch + consolidate locally via the shared `dasc-core` helpers.
//!
//! Jobs submitted against a packed dataset store ([`JobData::Ref`])
//! follow the same flow with the `*Ref` task kinds: tasks carry the
//! [`DatasetManifest`] and row ranges instead of points, and the
//! coordinator doubles as the name node, serving raw shard bytes to
//! workers on [`Msg::ShardRequest`] out of the mmap'd store.
//!
//! Because every numerical step is the same shared function the
//! in-process engine calls, the final assignments are bit-identical to
//! `Dasc::run_distributed` for the same `JobSpec` — regardless of
//! worker count, task interleaving, or mid-job worker deaths.
//!
//! Fault tolerance is Hadoop-shaped: workers heartbeat; a worker silent
//! past `worker_liveness_timeout` (or whose task connection drops) is
//! declared dead and its in-flight tasks re-queue with `attempt + 1`;
//! a task exhausting `max_task_attempts` fails the job. Stale results
//! from resurrected attempts are ignored unless the reporting worker
//! still owns the in-flight entry.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::io;
use std::net::SocketAddr;
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use dasc_core::{bucket_cluster_count, consolidate, stitch_distributed, Clustering};
use dasc_lsh::{BucketSet, LshConfig, Signature, SignatureModel};
use dasc_mapreduce::{split_ranges, ClusterConfig};
use dasc_net::{ConnId, Server, ServerConfig, ServerHandle, Service};
use dasc_obs::{labeled, span, InstantRecord, MetricsSnapshot, SpanRecord, TraceLane};
use dasc_store::{DatasetManifest, StoreReader};

use crate::httpd::HttpHandle;
use crate::proto::{stage, JobData, JobOutcome, JobSpec, Msg, Task, TaskKind, TaskOutput};

/// A task is flagged as a straggler once its elapsed time exceeds this
/// multiple of the running-median completed-task duration (Hadoop's
/// speculative-execution trigger is the same shape).
const STRAGGLER_FACTOR: u64 = 2;
/// Straggler floor: never flag tasks faster than this, so microsecond
/// jitter on tiny test jobs doesn't light the gauge.
const STRAGGLER_MIN_US: u64 = 1_000;
/// Completed-duration ring capacity behind the running median.
const TASK_DURATION_WINDOW: usize = 256;
/// Don't flag stragglers until the median rests on this many samples.
const STRAGGLER_MIN_SAMPLES: usize = 3;

/// A running coordinator.
pub struct Coordinator {
    server: ServerHandle<CoordinatorService>,
    http: Option<HttpHandle>,
}

impl Coordinator {
    /// Bind `addr` (port 0 picks a free port) and start serving.
    pub fn start(addr: &str, cluster: ClusterConfig) -> io::Result<Coordinator> {
        let service = CoordinatorService {
            state: Arc::new(SharedState {
                inner: Mutex::new(State::default()),
                changed: Condvar::new(),
                cluster,
            }),
        };
        let server = Server::new(
            service,
            ServerConfig {
                read_timeout: Duration::from_millis(200),
            },
        )
        .start(addr)?;
        Ok(Coordinator { server, http: None })
    }

    /// Also serve the federated metrics over HTTP (`GET /metrics` in
    /// Prometheus text, `GET /workers` as JSON) on `addr`. Port 0 picks
    /// a free port; the bound address is returned.
    pub fn serve_http(&mut self, addr: &str) -> io::Result<SocketAddr> {
        let handle = crate::httpd::start(Arc::clone(&self.server.service().state), addr)?;
        let bound = handle.addr();
        self.http = Some(handle);
        Ok(bound)
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.server.addr()
    }

    /// Block until the server dies on its own (daemon mode). The HTTP
    /// endpoint keeps serving for as long as the RPC server lives.
    pub fn wait(mut self) {
        let http = self.http.take();
        self.server.wait();
        if let Some(http) = http {
            http.shutdown();
        }
    }

    /// Graceful shutdown: stop accepting, join all threads. Running job
    /// runners observe the dropped connections and fail their stages.
    pub fn shutdown(mut self) {
        if let Some(http) = self.http.take() {
            http.shutdown();
        }
        self.server.service().state.shutdown();
        self.server.shutdown();
    }

    /// Workers currently registered and live (test/diagnostic hook).
    pub fn live_workers(&self) -> usize {
        let state = self.server.service().state.inner.lock().expect("state");
        state.workers.len()
    }
}

struct CoordinatorService {
    state: Arc<SharedState>,
}

pub(crate) struct SharedState {
    pub(crate) inner: Mutex<State>,
    changed: Condvar,
    cluster: ClusterConfig,
}

#[derive(Default)]
pub(crate) struct State {
    shutting_down: bool,
    next_worker_id: u64,
    next_job_id: u64,
    next_task_id: u64,
    pub(crate) workers: HashMap<u64, WorkerInfo>,
    /// Tasks ready to hand to the next `RequestTask`.
    pending: VecDeque<Task>,
    /// task_id → (worker running it, the task, when it started).
    pub(crate) in_flight: HashMap<u64, InFlight>,
    /// task_id → attempts consumed so far (pending + in-flight).
    attempts: HashMap<u64, u32>,
    /// Completed task outputs awaiting pickup by their job runner,
    /// keyed by task_id, with the completing worker recorded.
    outputs: HashMap<u64, (u64, TaskOutput)>,
    /// task_id → terminal failure message (attempt budget exhausted).
    dead_tasks: HashMap<u64, String>,
    jobs: HashMap<u64, JobState>,
    /// Latest federated metrics snapshot per worker *name*. Kept after
    /// a worker dies so its series survive in scrapes (post-mortems
    /// need the dead worker's numbers most of all).
    pub(crate) worker_metrics: BTreeMap<String, MetricsSnapshot>,
    /// Recent completed-task durations (µs) feeding the running median
    /// behind the straggler gauge.
    recent_task_durations: VecDeque<u64>,
    /// Per-job merged trace under assembly (only for jobs submitted
    /// with `collect_trace`).
    traces: HashMap<u64, JobTrace>,
    /// Open dataset stores, keyed by content hash — the coordinator's
    /// name-node table. Registered at ref-job submission, retained for
    /// the server's lifetime so late shard fetches (retried tasks,
    /// follow-up jobs on the same dataset) keep resolving.
    datasets: HashMap<u64, Arc<StoreReader>>,
}

pub(crate) struct WorkerInfo {
    /// Registered name — the `worker="<name>"` label on every federated
    /// series and trace lane this worker produces.
    pub(crate) name: String,
    pub(crate) last_seen: Instant,
    /// The connection the worker last pulled a task on; if it drops,
    /// the worker is declared dead immediately.
    task_conn: Option<ConnId>,
    /// Tasks this worker has completed (surfaced by `/workers`).
    pub(crate) tasks_done: u64,
}

pub(crate) struct InFlight {
    pub(crate) worker_id: u64,
    task: Task,
    /// When the task was handed out — drives both the straggler check
    /// and the rebasing of the worker's span log onto the job timeline.
    assigned_at: Instant,
}

enum JobState {
    Running { stage: u8, done: u64, total: u64 },
    Done(JobOutcome),
    Failed(String),
}

/// A merged multi-lane trace under assembly for one tracing job: the
/// coordinator lane records scheduling (queued-wait and assigned-run
/// spans per task, lifecycle instants), and each worker's returned span
/// logs are rebased onto the shared epoch into that worker's lane.
struct JobTrace {
    epoch: Instant,
    next_id: u64,
    /// Coordinator-lane spans (job/stage/scheduling).
    spans: Vec<SpanRecord>,
    /// Coordinator-lane lifecycle markers (retried/fenced/lost).
    instants: Vec<InstantRecord>,
    /// Worker-lane spans, keyed by worker name.
    lanes: BTreeMap<String, Vec<SpanRecord>>,
    /// Coordinator spans opened but not yet closed:
    /// id → (name, parent, start offset µs).
    open: HashMap<u64, (String, u64, u64)>,
    /// task_id → enqueue offset µs (closed into a queued-wait span at
    /// assignment).
    queued_at: HashMap<u64, u64>,
}

impl JobTrace {
    fn new() -> Self {
        Self {
            epoch: Instant::now(),
            next_id: 1,
            spans: Vec::new(),
            instants: Vec::new(),
            lanes: BTreeMap::new(),
            open: HashMap::new(),
            queued_at: HashMap::new(),
        }
    }

    /// Offset of "now" from the job epoch, µs.
    fn ts(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn alloc(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn push_span(&mut self, name: String, parent: u64, start_us: u64, dur_us: u64) -> u64 {
        let id = self.alloc();
        self.spans.push(SpanRecord {
            id,
            parent: (parent != 0).then_some(parent),
            name,
            thread: 0,
            start_us,
            dur_us,
        });
        id
    }

    fn mark(&mut self, name: String) {
        let ts_us = self.ts();
        self.instants.push(InstantRecord { name, ts_us });
    }

    /// Give `worker` a lane as soon as it is *assigned* a traced task:
    /// a worker that dies before returning any spans still belongs on
    /// the merged timeline (its loss/retry instants reference it).
    fn touch_lane(&mut self, worker: &str) {
        self.lanes.entry(worker.to_string()).or_default();
    }

    /// Fold a worker's task span log into its lane: ids are remapped
    /// into the job's id space, local parents follow the remap, roots
    /// hang under the task's coordinator-side `trace_parent`, and
    /// task-relative timestamps shift by the assignment offset.
    fn merge_worker_spans(
        &mut self,
        worker: &str,
        trace_parent: u64,
        base_us: u64,
        spans: Vec<SpanRecord>,
    ) {
        let remap: HashMap<u64, u64> = spans.iter().map(|s| (s.id, self.alloc())).collect();
        let lane = self.lanes.entry(worker.to_string()).or_default();
        for mut s in spans {
            s.id = remap[&s.id];
            s.parent = match s.parent.and_then(|p| remap.get(&p)) {
                Some(&p) => Some(p),
                None => (trace_parent != 0).then_some(trace_parent),
            };
            s.start_us += base_us;
            lane.push(s);
        }
    }
}

impl SharedState {
    fn shutdown(&self) {
        let mut state = self.inner.lock().expect("state");
        state.shutting_down = true;
        self.changed.notify_all();
    }

    /// Declare a worker dead: drop it and re-queue its in-flight tasks
    /// (or fail them if out of attempts).
    fn declare_lost(&self, state: &mut State, worker_id: u64, why: &str) {
        let Some(info) = state.workers.remove(&worker_id) else {
            return;
        };
        dasc_obs::global().inc("dasc_dist_workers_lost_total", 1);
        let name = info.name;
        for tr in state.traces.values_mut() {
            tr.mark(format!("worker {name} lost ({why})"));
        }
        let orphaned: Vec<u64> = state
            .in_flight
            .iter()
            .filter(|(_, f)| f.worker_id == worker_id)
            .map(|(&tid, _)| tid)
            .collect();
        for task_id in orphaned {
            let inflight = state.in_flight.remove(&task_id).expect("in-flight entry");
            self.requeue(state, inflight.task, format!("worker {name} {why}"));
        }
        self.changed.notify_all();
    }

    /// Put a task back in the queue with `attempt + 1`, or mark it dead
    /// if the retry budget is spent. Either way the tracing job gets a
    /// lifecycle marker, so a killed worker's fenced/retried task is
    /// visible in the merged timeline.
    fn requeue(&self, state: &mut State, mut task: Task, why: String) {
        let attempts = state.attempts.get(&task.task_id).copied().unwrap_or(1);
        if attempts >= self.cluster.max_task_attempts as u32 {
            if let Some(tr) = state.traces.get_mut(&task.job_id) {
                tr.mark(format!(
                    "task {} dead after {attempts} attempts",
                    task.task_id
                ));
            }
            state.dead_tasks.insert(
                task.task_id,
                format!(
                    "task {} failed after {attempts} attempts: {why}",
                    task.task_id
                ),
            );
            return;
        }
        dasc_obs::global().inc("dasc_dist_task_retries_total", 1);
        task.attempt = attempts + 1;
        state.attempts.insert(task.task_id, attempts + 1);
        if let Some(tr) = state.traces.get_mut(&task.job_id) {
            tr.mark(format!(
                "task {} retried (attempt {}): {why}",
                task.task_id, task.attempt
            ));
            tr.queued_at.insert(task.task_id, tr.ts());
        }
        state.pending.push_back(task);
    }

    /// Update the `dasc_dist_stragglers` gauge: in-flight tasks whose
    /// elapsed time exceeds `STRAGGLER_FACTOR ×` the running median of
    /// recently completed tasks (with a floor so microsecond-scale test
    /// jobs never flag).
    fn sweep_stragglers(&self, state: &State) {
        let stragglers = if state.recent_task_durations.len() >= STRAGGLER_MIN_SAMPLES {
            let mut sorted: Vec<u64> = state.recent_task_durations.iter().copied().collect();
            sorted.sort_unstable();
            let median = sorted[sorted.len() / 2];
            let threshold = (median * STRAGGLER_FACTOR).max(STRAGGLER_MIN_US);
            state
                .in_flight
                .values()
                .filter(|f| f.assigned_at.elapsed().as_micros() as u64 > threshold)
                .count()
        } else {
            0
        };
        dasc_obs::global()
            .gauge("dasc_dist_stragglers")
            .set(stragglers as i64);
    }

    /// The federated metrics view: the coordinator's own registry plus
    /// every worker's last heartbeat snapshot re-keyed with its
    /// `worker="<name>"` label, rendered as Prometheus text.
    pub(crate) fn federated_metrics_text(&self) -> String {
        let mut snap = dasc_obs::global().snapshot();
        let state = self.inner.lock().expect("state");
        self.sweep_stragglers(&state);
        snap.gauges.insert(
            "dasc_dist_workers_connected".to_string(),
            state.workers.len() as i64,
        );
        snap.gauges.insert(
            "dasc_dist_stragglers".to_string(),
            dasc_obs::global().gauge("dasc_dist_stragglers").get(),
        );
        let mut merged = snap;
        for (name, worker_snap) in &state.worker_metrics {
            merged = merged.merge(worker_snap.clone().with_label("worker", name));
        }
        dasc_obs::prometheus::render(&merged)
    }

    /// Export a finished tracing job's merged Chrome trace JSON: lane 0
    /// is the coordinator, lanes 1.. are the workers in name order.
    fn trace_json(&self, job_id: u64) -> Option<String> {
        let state = self.inner.lock().expect("state");
        let tr = state.traces.get(&job_id)?;
        let mut lanes = vec![TraceLane {
            pid: 0,
            label: "coordinator".to_string(),
            spans: tr.spans.clone(),
            instants: tr.instants.clone(),
        }];
        for (i, (name, spans)) in tr.lanes.iter().enumerate() {
            lanes.push(TraceLane {
                pid: i as u64 + 1,
                label: name.clone(),
                spans: spans.clone(),
                instants: Vec::new(),
            });
        }
        Some(dasc_obs::chrome_trace_json_lanes(&lanes))
    }

    /// Open a coordinator-lane span for a tracing job. Returns the span
    /// id, or 0 when the job is not tracing (0 doubles as "no parent"
    /// and as `Task::trace_parent`'s "tracing off").
    fn trace_begin(&self, job_id: u64, name: &str, parent: u64) -> u64 {
        let mut state = self.inner.lock().expect("state");
        let Some(tr) = state.traces.get_mut(&job_id) else {
            return 0;
        };
        let id = tr.alloc();
        let start = tr.ts();
        tr.open.insert(id, (name.to_string(), parent, start));
        id
    }

    /// Close a span opened with [`SharedState::trace_begin`].
    fn trace_end(&self, job_id: u64, span_id: u64) {
        if span_id == 0 {
            return;
        }
        let mut state = self.inner.lock().expect("state");
        let Some(tr) = state.traces.get_mut(&job_id) else {
            return;
        };
        if let Some((name, parent, start)) = tr.open.remove(&span_id) {
            let dur = tr.ts().saturating_sub(start);
            tr.spans.push(SpanRecord {
                id: span_id,
                parent: (parent != 0).then_some(parent),
                name,
                thread: 0,
                start_us: start,
                dur_us: dur,
            });
        }
    }

    /// Enqueue `tasks` and block until all are complete or any is
    /// terminally dead. Returns outputs keyed by task_id, plus the set
    /// of workers that completed at least one of them.
    fn run_stage(
        &self,
        job_id: u64,
        stage_tag: u8,
        tasks: Vec<Task>,
    ) -> Result<(HashMap<u64, TaskOutput>, HashSet<u64>), String> {
        let task_ids: Vec<u64> = tasks.iter().map(|t| t.task_id).collect();
        {
            let mut state = self.inner.lock().expect("state");
            if let Some(JobState::Running { stage, done, total }) = state.jobs.get_mut(&job_id) {
                *stage = stage_tag;
                *done = 0;
                *total = task_ids.len() as u64;
            }
            for task in tasks {
                state.attempts.insert(task.task_id, 1);
                if task.trace_parent != 0 {
                    if let Some(tr) = state.traces.get_mut(&task.job_id) {
                        let ts = tr.ts();
                        tr.queued_at.insert(task.task_id, ts);
                    }
                }
                state.pending.push_back(task);
            }
            self.changed.notify_all();
        }

        let mut outputs = HashMap::new();
        let mut workers_used = HashSet::new();
        let mut state = self.inner.lock().expect("state");
        loop {
            for &tid in &task_ids {
                if let Some((worker, out)) = state.outputs.remove(&tid) {
                    outputs.insert(tid, out);
                    workers_used.insert(worker);
                }
                if let Some(err) = state.dead_tasks.get(&tid) {
                    let err = err.clone();
                    self.abandon_stage(&mut state, &task_ids);
                    return Err(err);
                }
            }
            if let Some(JobState::Running { done, .. }) = state.jobs.get_mut(&job_id) {
                *done = outputs.len() as u64;
            }
            if outputs.len() == task_ids.len() {
                return Ok((outputs, workers_used));
            }
            if state.shutting_down {
                self.abandon_stage(&mut state, &task_ids);
                return Err("coordinator shutting down".to_string());
            }
            let (next, _) = self
                .changed
                .wait_timeout(state, Duration::from_millis(100))
                .expect("state");
            state = next;
            // The sweep needs the lock we hold; do it inline.
            let timeout = self.cluster.worker_liveness_timeout;
            let silent: Vec<u64> = state
                .workers
                .iter()
                .filter(|(_, w)| w.last_seen.elapsed() > timeout)
                .map(|(&id, _)| id)
                .collect();
            for id in silent {
                self.declare_lost(&mut state, id, "missed heartbeats");
            }
            self.sweep_stragglers(&state);
        }
    }

    /// Drop a failed stage's remaining bookkeeping so nothing leaks.
    fn abandon_stage(&self, state: &mut State, task_ids: &[u64]) {
        let ids: HashSet<u64> = task_ids.iter().copied().collect();
        state.pending.retain(|t| !ids.contains(&t.task_id));
        state.in_flight.retain(|tid, _| !ids.contains(tid));
        for tid in task_ids {
            state.attempts.remove(tid);
            state.outputs.remove(tid);
            state.dead_tasks.remove(tid);
        }
    }

    fn alloc_task_ids(&self, n: usize) -> u64 {
        let mut state = self.inner.lock().expect("state");
        let first = state.next_task_id;
        state.next_task_id += n as u64;
        first
    }

    fn set_job_state(&self, job_id: u64, js: JobState) {
        let mut state = self.inner.lock().expect("state");
        state.jobs.insert(job_id, js);
        self.changed.notify_all();
    }
}

impl Service for CoordinatorService {
    fn handle(&self, conn: ConnId, msg_type: u16, payload: &[u8]) -> Option<(u16, Vec<u8>)> {
        let reg = dasc_obs::global();
        reg.inc("dasc_dist_rpcs_total", 1);
        let msg = match Msg::decode_frame(msg_type, payload) {
            Ok(m) => m,
            Err(e) => {
                let reply = Msg::JobError {
                    message: format!("protocol error: {e}"),
                };
                return Some((reply.msg_type() as u16, reply.encode_payload()));
            }
        };
        let reply = self.dispatch(conn, msg);
        Some((reply.msg_type() as u16, reply.encode_payload()))
    }

    fn on_disconnect(&self, conn: ConnId) {
        let shared = Arc::clone(&self.state);
        let mut state = shared.inner.lock().expect("state");
        let lost: Vec<u64> = state
            .workers
            .iter()
            .filter(|(_, w)| w.task_conn == Some(conn))
            .map(|(&id, _)| id)
            .collect();
        for id in lost {
            shared.declare_lost(&mut state, id, "dropped its task connection");
        }
    }
}

impl CoordinatorService {
    fn dispatch(&self, conn: ConnId, msg: Msg) -> Msg {
        let shared = &self.state;
        let reg = dasc_obs::global();
        match msg {
            Msg::Register { name } => {
                let mut state = shared.inner.lock().expect("state");
                state.next_worker_id += 1;
                let worker_id = state.next_worker_id;
                state.workers.insert(
                    worker_id,
                    WorkerInfo {
                        name,
                        last_seen: Instant::now(),
                        task_conn: None,
                        tasks_done: 0,
                    },
                );
                reg.inc("dasc_dist_workers_registered_total", 1);
                Msg::RegisterAck {
                    worker_id,
                    heartbeat_interval_ms: shared.cluster.heartbeat_interval.as_millis() as u64,
                }
            }
            Msg::Heartbeat { worker_id, metrics } => {
                reg.inc("dasc_dist_heartbeats_total", 1);
                let mut state = shared.inner.lock().expect("state");
                if let Some(w) = state.workers.get_mut(&worker_id) {
                    let lag = w.last_seen.elapsed();
                    reg.observe("dasc_dist_heartbeat_lag_us", lag.as_micros() as u64);
                    w.last_seen = Instant::now();
                    // Federation: retain the latest snapshot under the
                    // worker's *name* so the series outlive the worker.
                    if !metrics.is_empty() {
                        let name = w.name.clone();
                        state.worker_metrics.insert(name, metrics);
                    }
                }
                Msg::HeartbeatAck
            }
            Msg::RequestTask { worker_id } => {
                let mut state = shared.inner.lock().expect("state");
                let Some(w) = state.workers.get_mut(&worker_id) else {
                    // Unknown (e.g. previously declared dead): make it
                    // back off; re-registration is its own call.
                    return Msg::NoTask {
                        backoff_ms: shared.cluster.heartbeat_interval.as_millis() as u64,
                    };
                };
                w.last_seen = Instant::now();
                w.task_conn = Some(conn);
                let assignee = w.name.clone();
                match state.pending.pop_front() {
                    Some(task) => {
                        reg.inc("dasc_dist_tasks_assigned_total", 1);
                        // Close the queued-wait span for a tracing job:
                        // enqueue → assignment, on the coordinator lane.
                        if task.trace_parent != 0 {
                            if let Some(tr) = state.traces.get_mut(&task.job_id) {
                                tr.touch_lane(&assignee);
                                if let Some(queued) = tr.queued_at.remove(&task.task_id) {
                                    let now = tr.ts();
                                    tr.push_span(
                                        format!("task {} queued", task.task_id),
                                        task.trace_parent,
                                        queued,
                                        now.saturating_sub(queued),
                                    );
                                }
                            }
                        }
                        state.in_flight.insert(
                            task.task_id,
                            InFlight {
                                worker_id,
                                task: task.clone(),
                                assigned_at: Instant::now(),
                            },
                        );
                        Msg::AssignTask { task }
                    }
                    None => Msg::NoTask {
                        backoff_ms: shared.cluster.heartbeat_interval.as_millis() as u64 / 2,
                    },
                }
            }
            Msg::TaskDone {
                worker_id,
                task_id,
                output,
                spans,
            } => {
                let mut state = shared.inner.lock().expect("state");
                let worker_name = state.workers.get_mut(&worker_id).map(|w| {
                    w.last_seen = Instant::now();
                    w.name.clone()
                });
                // Only the worker that owns the in-flight entry may
                // complete it — a stale attempt from a worker already
                // declared dead (whose task was re-run elsewhere) is
                // acked and dropped.
                let owned = state
                    .in_flight
                    .get(&task_id)
                    .is_some_and(|f| f.worker_id == worker_id);
                if owned {
                    let inflight = state.in_flight.remove(&task_id).expect("owned entry");
                    reg.inc("dasc_dist_tasks_completed_total", 1);
                    let (records, bytes) = output_volume(&output);
                    reg.inc("dasc_dist_shuffle_records_total", records);
                    reg.inc("dasc_dist_shuffle_bytes_total", bytes);
                    // Lifecycle accounting: per-stage (and per-worker)
                    // duration histograms plus the running-median window
                    // behind the straggler gauge. Observed coordinator-
                    // side so the series exist even for workers that die
                    // before their next heartbeat ships metrics.
                    let duration_us = inflight.assigned_at.elapsed().as_micros() as u64;
                    let stage_name = match inflight.task.kind {
                        TaskKind::MapSignatures { .. } | TaskKind::MapSignaturesRef { .. } => "map",
                        TaskKind::ReduceBucket { .. } | TaskKind::ReduceBucketRef { .. } => {
                            "reduce"
                        }
                    };
                    let series = labeled("dasc_dist_task_duration_us", "stage", stage_name);
                    reg.observe(&series, duration_us);
                    if let Some(name) = worker_name.as_deref() {
                        reg.observe(&labeled(&series, "worker", name), duration_us);
                    }
                    state.recent_task_durations.push_back(duration_us);
                    if state.recent_task_durations.len() > TASK_DURATION_WINDOW {
                        state.recent_task_durations.pop_front();
                    }
                    if let Some(w) = state.workers.get_mut(&worker_id) {
                        w.tasks_done += 1;
                    }
                    // Trace stitching: a coordinator-lane span covering
                    // assignment → completion, plus the worker's own
                    // span log rebased onto the job timeline.
                    if inflight.task.trace_parent != 0 {
                        if let Some(tr) = state.traces.get_mut(&inflight.task.job_id) {
                            let base_us =
                                inflight.assigned_at.duration_since(tr.epoch).as_micros() as u64;
                            let lane = worker_name.as_deref().unwrap_or("worker");
                            tr.push_span(
                                format!("task {task_id} @ {lane}"),
                                inflight.task.trace_parent,
                                base_us,
                                duration_us,
                            );
                            tr.merge_worker_spans(lane, inflight.task.trace_parent, base_us, spans);
                        }
                    }
                    state.outputs.insert(task_id, (worker_id, output));
                    shared.changed.notify_all();
                } else {
                    reg.inc("dasc_dist_tasks_fenced_total", 1);
                    let lane = worker_name.as_deref().unwrap_or("worker").to_string();
                    for tr in state.traces.values_mut() {
                        tr.mark(format!("task {task_id} fenced (stale result from {lane})"));
                    }
                }
                Msg::TaskAck
            }
            Msg::TaskFailed {
                worker_id,
                task_id,
                error,
            } => {
                let mut state = shared.inner.lock().expect("state");
                let owned = state
                    .in_flight
                    .get(&task_id)
                    .is_some_and(|f| f.worker_id == worker_id);
                if owned {
                    let inflight = state.in_flight.remove(&task_id).expect("owned entry");
                    shared.requeue(&mut state, inflight.task, error);
                    shared.changed.notify_all();
                }
                Msg::TaskAck
            }
            Msg::SubmitJob { spec } => {
                let job_id = {
                    let mut state = shared.inner.lock().expect("state");
                    state.next_job_id += 1;
                    let id = state.next_job_id;
                    state.jobs.insert(
                        id,
                        JobState::Running {
                            stage: stage::QUEUED,
                            done: 0,
                            total: 0,
                        },
                    );
                    id
                };
                reg.inc("dasc_dist_jobs_total", 1);
                let shared = Arc::clone(shared);
                std::thread::spawn(move || run_job(&shared, job_id, spec));
                Msg::JobAccepted { job_id }
            }
            Msg::PollJob { job_id } => {
                let state = shared.inner.lock().expect("state");
                match state.jobs.get(&job_id) {
                    Some(JobState::Running { stage, done, total }) => Msg::JobPending {
                        stage: *stage,
                        done: *done,
                        total: *total,
                    },
                    Some(JobState::Done(outcome)) => Msg::JobResult {
                        outcome: outcome.clone(),
                    },
                    Some(JobState::Failed(message)) => Msg::JobError {
                        message: message.clone(),
                    },
                    None => Msg::JobError {
                        message: format!("unknown job {job_id}"),
                    },
                }
            }
            Msg::ShardRequest { dataset, shard } => {
                // Resolve the reader under the lock, read the file
                // outside it — shard serving must not stall scheduling.
                let reader = {
                    let state = shared.inner.lock().expect("state");
                    state.datasets.get(&dataset).cloned()
                };
                match reader {
                    Some(r) => match r.shard_file_bytes(shard as usize) {
                        Ok(bytes) => {
                            reg.inc("dasc_store_shards_served_total", 1);
                            Msg::ShardReply { bytes }
                        }
                        Err(e) => Msg::JobError {
                            message: format!("shard {shard} of dataset {dataset:#018x}: {e}"),
                        },
                    },
                    None => Msg::JobError {
                        message: format!("unknown dataset {dataset:#018x}"),
                    },
                }
            }
            Msg::MetricsRequest => Msg::MetricsReply {
                text: shared.federated_metrics_text(),
            },
            Msg::TraceRequest { job_id } => match shared.trace_json(job_id) {
                // `put_str` caps frames at 1 MiB; an over-budget trace
                // becomes an explicit error rather than a panic.
                Some(json) if json.len() <= crate::proto::MAX_TRACE_JSON => {
                    Msg::TraceReply { json }
                }
                Some(json) => Msg::JobError {
                    message: format!(
                        "trace for job {job_id} is {} bytes, over the {} byte frame cap",
                        json.len(),
                        crate::proto::MAX_TRACE_JSON
                    ),
                },
                None => Msg::JobError {
                    message: format!("no trace recorded for job {job_id}"),
                },
            },
            other => Msg::JobError {
                message: format!("unexpected message {:?} at coordinator", other.msg_type()),
            },
        }
    }
}

/// Payload accounting for the shuffle counters: records and approximate
/// wire bytes of a task output.
fn output_volume(output: &TaskOutput) -> (u64, u64) {
    match output {
        TaskOutput::MapSignatures(groups) => {
            let records: u64 = groups.iter().map(|(_, m)| m.len() as u64).sum();
            let bytes: u64 = groups.iter().map(|(_, m)| 12 + 8 * m.len() as u64).sum();
            (records, bytes)
        }
        TaskOutput::ReduceBucket(records) => (records.len() as u64, 24 * records.len() as u64),
    }
}

/// Payload accounting for task *inputs*: the approximate wire bytes the
/// coordinator ships to a worker inside one task body (counted once per
/// task at build time; a retried task re-ships but isn't re-counted).
/// Inline tasks carry their points; shard-addressed tasks carry only
/// the hash planes / member ids plus a manifest — the gap between the
/// two is the shuffle saving the dataset store buys, and it is what
/// `JobOutcome::shuffle_bytes` measures alongside the output volume.
pub fn task_input_volume(kind: &TaskKind) -> u64 {
    fn manifest_bytes(m: &DatasetManifest) -> u64 {
        37 + 24 * m.shards.len() as u64
    }
    fn points_bytes(points: &[Vec<f64>]) -> u64 {
        points.iter().map(|p| 4 + 8 * p.len() as u64).sum()
    }
    match kind {
        TaskKind::MapSignatures { planes, points, .. } => {
            16 * planes.len() as u64 + points_bytes(points) + 16
        }
        TaskKind::ReduceBucket {
            members, points, ..
        } => 8 * members.len() as u64 + points_bytes(points) + 29,
        TaskKind::MapSignaturesRef {
            planes, manifest, ..
        } => 16 * planes.len() as u64 + manifest_bytes(manifest) + 16,
        TaskKind::ReduceBucketRef {
            members, manifest, ..
        } => 8 * members.len() as u64 + manifest_bytes(manifest) + 29,
    }
}

/// The resolved dataset a job computes over: the submission's inline
/// points, or an opened (verified) store served shard-wise to workers.
enum DataSource<'a> {
    Inline(&'a [Vec<f64>]),
    Store(Arc<StoreReader>),
}

impl DataSource<'_> {
    fn len(&self) -> usize {
        match self {
            DataSource::Inline(points) => points.len(),
            DataSource::Store(reader) => reader.len(),
        }
    }
}

/// The job runner: the exact `Dasc::train_distributed` flow with map
/// and reduce bodies farmed out to workers.
fn run_job(shared: &SharedState, job_id: u64, spec: JobSpec) {
    let result = execute_job(shared, job_id, &spec);
    match result {
        Ok(outcome) => shared.set_job_state(job_id, JobState::Done(outcome)),
        Err(message) => {
            dasc_obs::global().inc("dasc_dist_jobs_failed_total", 1);
            shared.set_job_state(job_id, JobState::Failed(message));
        }
    }
}

fn execute_job(shared: &SharedState, job_id: u64, spec: &JobSpec) -> Result<JobOutcome, String> {
    // Resolve the dataset. A store ref is opened on the coordinator's
    // filesystem, fully checksum-verified, pinned against the submitted
    // identity hash, and registered in the name-node table so workers
    // can fetch its shards.
    let source = match &spec.data {
        JobData::Inline { points } => DataSource::Inline(points),
        JobData::Ref { path, content_hash } => {
            let reader = StoreReader::open(Path::new(path))
                .map_err(|e| format!("open dataset store {path}: {e}"))?;
            let actual = reader.manifest().content_hash;
            if actual != *content_hash {
                return Err(format!(
                    "dataset store {path} has content hash {actual:#018x}, \
                     job submitted {content_hash:#018x}"
                ));
            }
            reader
                .verify_all()
                .map_err(|e| format!("verify dataset store {path}: {e}"))?;
            let reader = Arc::new(reader);
            shared
                .inner
                .lock()
                .expect("state")
                .datasets
                .insert(*content_hash, Arc::clone(&reader));
            DataSource::Store(reader)
        }
    };
    let n = source.len();
    if n == 0 {
        return Err("empty dataset".to_string());
    }
    if spec.k == 0 {
        return Err("k must be >= 1".to_string());
    }
    let retries_before = dasc_obs::global().counter_value("dasc_dist_task_retries_total");
    if spec.collect_trace {
        let mut state = shared.inner.lock().expect("state");
        state.traces.insert(job_id, JobTrace::new());
    }
    let job_span = span!("dist.job");
    let job_span_id = shared.trace_begin(job_id, "dist.job", 0);
    let lsh = if spec.num_bits == 0 {
        LshConfig::for_dataset(n)
    } else {
        LshConfig::with_bits(spec.num_bits)
    };

    // Stage 1: fit the model locally, hash remotely. Every task carries
    // the stage span as its trace context (0 when the job isn't traced),
    // so worker span logs come back parented under the right stage.
    let stage1_span = span!("dist.stage1");
    let stage1_id = shared.trace_begin(job_id, "dist.stage1", job_span_id);
    let stage1_start = Instant::now();
    // Both arms delegate to the same `fit_view` core, so the fitted
    // planes are bit-identical between inline and store submissions.
    let model = match &source {
        DataSource::Inline(points) => SignatureModel::fit(points, &lsh),
        DataSource::Store(reader) => SignatureModel::fit_view(reader.as_ref(), &lsh),
    };
    let ranges = split_ranges(n, &shared.cluster);
    let first_id = shared.alloc_task_ids(ranges.len());
    let map_tasks: Vec<Task> = ranges
        .iter()
        .enumerate()
        .map(|(i, &(start, len))| Task {
            job_id,
            task_id: first_id + i as u64,
            attempt: 1,
            trace_parent: stage1_id,
            kind: match &source {
                DataSource::Inline(points) => TaskKind::MapSignatures {
                    num_bits: model.num_bits(),
                    planes: model.planes().to_vec(),
                    start,
                    points: points[start..start + len].to_vec(),
                },
                DataSource::Store(reader) => TaskKind::MapSignaturesRef {
                    num_bits: model.num_bits(),
                    planes: model.planes().to_vec(),
                    manifest: reader.manifest().clone(),
                    start,
                    len,
                },
            },
        })
        .collect();
    let stage1_input_bytes: u64 = map_tasks.iter().map(|t| task_input_volume(&t.kind)).sum();
    dasc_obs::global().inc("dasc_dist_shuffle_bytes_total", stage1_input_bytes);
    let (map_outputs, workers1) = shared.run_stage(job_id, stage::MAP, map_tasks)?;
    let stage1_us = stage1_start.elapsed().as_micros() as u64;
    shared.trace_end(job_id, stage1_id);
    stage1_span.finish();

    // Between-stage merge, identical to the in-process engine.
    let m = model.num_bits();
    let mut sigs = vec![Signature::zero(m); n];
    for output in map_outputs.values() {
        let TaskOutput::MapSignatures(groups) = output else {
            return Err("map task returned reduce output".to_string());
        };
        for (bits, members) in groups {
            let s = Signature::from_bits(*bits, m);
            for &i in members {
                if i >= n {
                    return Err(format!("map output point {i} out of range"));
                }
                sigs[i] = s;
            }
        }
    }
    let buckets = BucketSet::from_signatures(&sigs).merge_with(lsh.merge_strategy, lsh.merge_p);

    // Stage 2: one reduce task per merged bucket.
    let stage2_span = span!("dist.stage2");
    let stage2_id = shared.trace_begin(job_id, "dist.stage2", job_span_id);
    let stage2_start = Instant::now();
    let first_id = shared.alloc_task_ids(buckets.len());
    let reduce_tasks: Vec<Task> = buckets
        .buckets()
        .iter()
        .enumerate()
        .map(|(bi, b)| Task {
            job_id,
            task_id: first_id + bi as u64,
            attempt: 1,
            trace_parent: stage2_id,
            kind: match &source {
                DataSource::Inline(points) => TaskKind::ReduceBucket {
                    bucket_id: bi,
                    ki: bucket_cluster_count(spec.k, b.members.len(), n),
                    kernel: spec.kernel,
                    seed: spec.seed,
                    lanczos_threshold: 512,
                    members: b.members.clone(),
                    points: b.members.iter().map(|&i| points[i].clone()).collect(),
                },
                DataSource::Store(reader) => TaskKind::ReduceBucketRef {
                    bucket_id: bi,
                    ki: bucket_cluster_count(spec.k, b.members.len(), n),
                    kernel: spec.kernel,
                    seed: spec.seed,
                    lanczos_threshold: 512,
                    manifest: reader.manifest().clone(),
                    members: b.members.clone(),
                },
            },
        })
        .collect();
    let stage2_input_bytes: u64 = reduce_tasks
        .iter()
        .map(|t| task_input_volume(&t.kind))
        .sum();
    dasc_obs::global().inc("dasc_dist_shuffle_bytes_total", stage2_input_bytes);
    let (reduce_outputs, workers2) = shared.run_stage(job_id, stage::REDUCE, reduce_tasks)?;
    let stage2_us = stage2_start.elapsed().as_micros() as u64;
    shared.trace_end(job_id, stage2_id);
    stage2_span.finish();

    // Finish locally: stitch + consolidate via the shared helpers.
    let finish_id = shared.trace_begin(job_id, "dist.finish", job_span_id);
    if let Some(JobState::Running { stage, .. }) =
        shared.inner.lock().expect("state").jobs.get_mut(&job_id)
    {
        *stage = stage::FINISH;
    }
    let mut records = Vec::with_capacity(n);
    for output in reduce_outputs.values() {
        let TaskOutput::ReduceBucket(rs) = output else {
            return Err("reduce task returned map output".to_string());
        };
        for &(point, bucket_id, local) in rs {
            if point >= n || bucket_id >= buckets.len() {
                return Err("reduce output out of range".to_string());
            }
            records.push((point, bucket_id, local));
        }
    }
    if records.len() != n {
        return Err(format!(
            "reduce stage covered {} of {n} points",
            records.len()
        ));
    }
    let stitched = stitch_distributed(n, spec.k, &buckets.sizes(), &records);
    let clustering: Clustering = if spec.consolidate {
        match &source {
            DataSource::Inline(points) => consolidate(*points, &stitched, spec.k, spec.seed),
            DataSource::Store(reader) => consolidate(reader.as_ref(), &stitched, spec.k, spec.seed),
        }
    } else {
        stitched
    };
    shared.trace_end(job_id, finish_id);
    shared.trace_end(job_id, job_span_id);
    job_span.finish();

    let (shuffle_records, output_bytes) = map_outputs
        .values()
        .chain(reduce_outputs.values())
        .map(output_volume)
        .fold((0, 0), |(r, b), (r2, b2)| (r + r2, b + b2));
    // Shuffle volume is both directions: task inputs shipped out plus
    // task outputs shipped back. Worker shard *fetches* are deliberately
    // excluded — they are DFS reads in the Hadoop analogy and are
    // accounted under the `dasc_store_*` series instead.
    let shuffle_bytes = output_bytes + stage1_input_bytes + stage2_input_bytes;
    let workers_used: HashSet<u64> = workers1.union(&workers2).copied().collect();
    let task_retries =
        dasc_obs::global().counter_value("dasc_dist_task_retries_total") - retries_before;
    Ok(JobOutcome {
        num_clusters: clustering.num_clusters,
        assignments: clustering.assignments,
        num_buckets: buckets.len(),
        workers_used: workers_used.len() as u64,
        stage1_us,
        stage2_us,
        shuffle_records,
        shuffle_bytes,
        task_retries,
    })
}
