//! The coordinator's HTTP sidecar: `GET /metrics` and `GET /workers`.
//!
//! External scrapers (Prometheus, `curl`) shouldn't need to speak the
//! binary RPC protocol to observe a cluster, so the coordinator can
//! also serve its *federated* metrics view — its own registry plus
//! every worker's heartbeat-shipped snapshot re-keyed with
//! `worker="<name>"` — over plain HTTP, reusing `dasc-serve`'s
//! request/response codec. `/workers` returns a JSON roster of live
//! workers (id, name, staleness, tasks completed) plus the names of
//! dead workers whose series are still federated.

use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use dasc_serve::http::{read_request, write_response, Request};
use dasc_serve::json::{object, JsonValue};

use crate::coordinator::SharedState;

/// A running HTTP sidecar; dropping it (or calling
/// [`HttpHandle::shutdown`]) stops the listener.
pub struct HttpHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl HttpHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the accept thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop the same way dasc-net does: poke it.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for HttpHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Bind `addr` (port 0 picks a free port) and serve until shutdown.
pub(crate) fn start(state: Arc<SharedState>, addr: &str) -> io::Result<HttpHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let thread = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || accept_loop(&listener, &state, &stop))
    };
    Ok(HttpHandle {
        addr,
        stop,
        thread: Some(thread),
    })
}

fn accept_loop(listener: &TcpListener, state: &Arc<SharedState>, stop: &Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let state = Arc::clone(state);
        let stop = Arc::clone(stop);
        std::thread::spawn(move || {
            let _ = serve_connection(stream, &state, &stop);
        });
    }
}

fn serve_connection(
    stream: TcpStream,
    state: &Arc<SharedState>,
    stop: &Arc<AtomicBool>,
) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    while !stop.load(Ordering::SeqCst) {
        let request = match read_request(&mut reader) {
            Ok(r) => r,
            Err(_) => return Ok(()), // closed, timed out, or malformed
        };
        let keep_alive = request.keep_alive();
        respond(&mut writer, &request, state, keep_alive)?;
        if !keep_alive {
            return Ok(());
        }
    }
    Ok(())
}

fn respond<W: io::Write>(
    writer: &mut W,
    request: &Request,
    state: &Arc<SharedState>,
    keep_alive: bool,
) -> io::Result<()> {
    if request.method != "GET" {
        return write_response(
            writer,
            405,
            "text/plain; charset=utf-8",
            b"only GET is supported\n",
            keep_alive,
        );
    }
    match request.path.split('?').next().unwrap_or("") {
        "/metrics" => {
            let body = state.federated_metrics_text();
            write_response(
                writer,
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                body.as_bytes(),
                keep_alive,
            )
        }
        "/workers" => {
            let body = workers_json(state);
            write_response(writer, 200, "application/json", body.as_bytes(), keep_alive)
        }
        _ => write_response(
            writer,
            404,
            "text/plain; charset=utf-8",
            b"try /metrics or /workers\n",
            keep_alive,
        ),
    }
}

/// The worker roster: live workers with liveness/progress detail, plus
/// names that only survive through federated metrics (dead workers).
fn workers_json(state: &Arc<SharedState>) -> String {
    let inner = state.inner.lock().expect("state");
    let mut live: Vec<JsonValue> = Vec::with_capacity(inner.workers.len());
    let mut ids: Vec<&u64> = inner.workers.keys().collect();
    ids.sort_unstable();
    for id in ids {
        let w = &inner.workers[id];
        let in_flight = inner
            .in_flight
            .values()
            .filter(|f| f.worker_id == *id)
            .count();
        live.push(object([
            ("id", JsonValue::Number(*id as f64)),
            ("name", JsonValue::String(w.name.clone())),
            (
                "last_seen_ms",
                JsonValue::Number(w.last_seen.elapsed().as_millis() as f64),
            ),
            ("tasks_done", JsonValue::Number(w.tasks_done as f64)),
            ("in_flight", JsonValue::Number(in_flight as f64)),
        ]));
    }
    let live_names: Vec<&str> = inner.workers.values().map(|w| w.name.as_str()).collect();
    let dead: Vec<JsonValue> = inner
        .worker_metrics
        .keys()
        .filter(|name| !live_names.contains(&name.as_str()))
        .map(|name| JsonValue::String(name.clone()))
        .collect();
    object([
        ("workers", JsonValue::Array(live)),
        ("dead_with_metrics", JsonValue::Array(dead)),
    ])
    .to_json()
}
