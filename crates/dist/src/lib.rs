//! Multi-process distributed DASC runtime.
//!
//! The paper runs DASC as two MapReduce stages on Hadoop across real
//! machines; the rest of this workspace replays that jobflow inside one
//! process (`dasc-mapreduce`). This crate closes the gap: a
//! [`Coordinator`] (job tracker + name node) and pull-based workers
//! ([`worker::spawn`]) execute the same two-stage pipeline across OS
//! processes over `dasc-net` TCP framing.
//!
//! Determinism is structural, not empirical: the map body, the reduce
//! body (`dasc_core::cluster_bucket`), the between-stage bucket merge,
//! the stitch (`dasc_core::stitch_distributed`) and the consolidation
//! (`dasc_core::consolidate`) are the *same functions* the in-process
//! `Dasc::run_distributed` calls, and none of them depend on task
//! granularity or arrival order. A distributed run therefore produces
//! bit-identical assignments to a single-process run of the same
//! [`JobSpec`] — with any number of workers, and even when workers die
//! mid-job and their tasks are retried elsewhere (Hadoop-style
//! `max_task_attempts` budget from `ClusterConfig`).
//!
//! Datasets travel either inline in the submission
//! ([`JobData::Inline`]) or as a reference to a packed `.dstr` store on
//! the coordinator's filesystem ([`JobData::Ref`]): tasks then carry
//! shard tables and row ranges instead of points, and workers pull
//! shard bytes through a checksum-verified LRU cache
//! ([`worker::ShardSource`]). Both paths run the same shared numerical
//! bodies, so their outputs are bit-identical too.

pub mod client;
pub mod coordinator;
pub mod httpd;
pub mod proto;
pub mod worker;

pub use client::{client_config, rpc, JobClient};
pub use coordinator::{task_input_volume, Coordinator};
pub use httpd::HttpHandle;
pub use proto::{JobData, JobOutcome, JobSpec, Msg, MsgType, Task, TaskKind, TaskOutput};
pub use worker::{
    execute_task, execute_task_traced, execute_task_traced_with, execute_task_with, run_worker,
    ShardSource, WorkerHandle, WorkerOptions,
};
