//! The worker: a task-tracker process pulling tasks over TCP.
//!
//! On start the worker registers, spawns a heartbeat thread on its own
//! connection, then loops: `RequestTask` → execute → `TaskDone` (or
//! `TaskFailed` if the task body panicked — the same failure unit as
//! the in-process engine's catch-unwind retry). Task bodies run the
//! *existing* `dasc-mapreduce` mapper/reducer machinery locally, so a
//! worker process is literally one Hadoop task tracker's worth of the
//! in-process engine, and its numerics are shared code with the
//! single-process path:
//!
//! * `MapSignatures` → [`run_map_only`] with the Algorithm 1 mapper;
//! * `ReduceBucket` → [`reduce_groups`] with a reducer that calls
//!   `dasc_core::cluster_bucket` (the shared stage-2 body).
//!
//! Shard-addressed tasks (`MapSignaturesRef` / `ReduceBucketRef`)
//! carry no points; the worker resolves the referenced global rows
//! through its [`ShardSource`] — a byte-bounded LRU shard cache that
//! fetches misses from the coordinator with `ShardRequest` RPCs and
//! verifies every fetched shard against the manifest checksum. The
//! numerical bodies are the same shared `dasc-core` functions, so a
//! ref task's output is bit-identical to its inline twin's.
//!
//! For fault-injection tests, [`WorkerOptions::die_after_assignments`]
//! makes the worker drop all its connections and stop the moment it
//! has *accepted* its Nth task — the coordinator sees a vanished
//! worker holding an in-flight task, exactly like a crashed machine.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use dasc_core::{cluster_bucket, cluster_bucket_flat};
use dasc_linalg::FlatPoints;
use dasc_lsh::SignatureModel;
use dasc_mapreduce::{reduce_groups, run_map_only, ClusterConfig, FnMapper, FnReducer};
use dasc_net::{Client, ClientConfig};
use dasc_obs::{labeled, MetricsSnapshot, SpanRecord, Tracer};
use dasc_store::{DatasetManifest, Shard, ShardCache, StoreError};

use crate::client::{client_config, rpc};
use crate::proto::{Msg, Task, TaskKind, TaskOutput};

/// Worker behaviour knobs.
#[derive(Clone, Debug)]
pub struct WorkerOptions {
    /// Human-readable name reported at registration.
    pub name: String,
    /// Cluster knobs: RPC timeouts/backoff and the local engine's slot
    /// configuration for executing task bodies.
    pub cluster: ClusterConfig,
    /// Fault injection: accept this many task assignments, then drop
    /// every connection and stop without completing the last one.
    pub die_after_assignments: Option<usize>,
    /// Ship this worker's metrics snapshot on every heartbeat for
    /// coordinator-side federation (benches turn it off to measure the
    /// observability overhead).
    pub telemetry: bool,
}

impl WorkerOptions {
    /// Defaults: single-node local engine, telemetry on, no fault
    /// injection.
    pub fn named(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            cluster: ClusterConfig::single_node(),
            die_after_assignments: None,
            telemetry: true,
        }
    }
}

/// Worker-side shard resolver: an LRU [`ShardCache`] backed by
/// `ShardRequest` RPCs to the coordinator. The fetch connection is
/// created lazily on the first cache miss (a worker that only ever runs
/// inline tasks never opens it) and dropped on any RPC failure so the
/// next miss reconnects cleanly.
pub struct ShardSource {
    cache: ShardCache,
    addr: String,
    config: ClientConfig,
    client: Mutex<Option<Client>>,
}

impl ShardSource {
    /// Resolver fetching from the coordinator at `addr`, cache sized
    /// from `DASC_SHARD_CACHE_BYTES` (default 256 MiB).
    pub fn new(addr: impl Into<String>, cluster: &ClusterConfig) -> Self {
        Self {
            cache: ShardCache::from_env(),
            addr: addr.into(),
            config: client_config(cluster),
            client: Mutex::new(None),
        }
    }

    /// The underlying cache (tests inspect residency and capacity).
    pub fn cache(&self) -> &ShardCache {
        &self.cache
    }

    /// Resolve shard `index` of `manifest`'s dataset: cache hit, or a
    /// checksum-verified fetch from the coordinator.
    pub fn shard(&self, manifest: &DatasetManifest, index: usize) -> Result<Arc<Shard>, String> {
        let meta = manifest
            .shards
            .get(index)
            .ok_or_else(|| format!("shard {index} out of range"))?;
        self.cache
            .get_or_fetch(
                manifest.content_hash,
                index as u32,
                manifest.dim,
                manifest.has_labels,
                meta,
                || {
                    let mut guard = self.client.lock().expect("shard client");
                    let client = guard
                        .get_or_insert_with(|| Client::new(self.addr.clone(), self.config.clone()));
                    let req = Msg::ShardRequest {
                        dataset: manifest.content_hash,
                        shard: index as u32,
                    };
                    match rpc(client, &req) {
                        Ok(Msg::ShardReply { bytes }) => Ok(bytes),
                        Ok(Msg::JobError { message }) => Err(StoreError::Fetch(message)),
                        Ok(other) => Err(StoreError::Fetch(format!(
                            "unexpected shard reply {:?}",
                            other.msg_type()
                        ))),
                        Err(e) => {
                            *guard = None;
                            Err(StoreError::Fetch(e))
                        }
                    }
                },
            )
            .map_err(|e| format!("shard {index}: {e}"))
    }
}

/// A running worker (its pull loop lives on a background thread).
pub struct WorkerHandle {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<Result<(), String>>>,
}

impl WorkerHandle {
    /// Ask the loop to stop and wait for it.
    pub fn shutdown(mut self) -> Result<(), String> {
        self.stop.store(true, Ordering::SeqCst);
        match self.thread.take() {
            Some(t) => t.join().map_err(|_| "worker thread panicked".to_string())?,
            None => Ok(()),
        }
    }

    /// Wait for the loop to end on its own (coordinator gone, fault
    /// injection tripped, or a fatal RPC error).
    pub fn wait(mut self) -> Result<(), String> {
        match self.thread.take() {
            Some(t) => t.join().map_err(|_| "worker thread panicked".to_string())?,
            None => Ok(()),
        }
    }

    /// True once the loop has exited.
    pub fn is_finished(&self) -> bool {
        self.thread.as_ref().is_none_or(JoinHandle::is_finished)
    }
}

impl Drop for WorkerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Start a worker against `coordinator_addr` on a background thread.
pub fn spawn(coordinator_addr: impl Into<String>, options: WorkerOptions) -> WorkerHandle {
    let addr = coordinator_addr.into();
    let stop = Arc::new(AtomicBool::new(false));
    let thread = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || run_worker(&addr, &options, &stop))
    };
    WorkerHandle {
        stop,
        thread: Some(thread),
    }
}

/// Run a worker loop until the coordinator goes away or `stop` is
/// raised. The CLI daemon calls this directly on its main thread.
pub fn run_worker(
    coordinator_addr: &str,
    options: &WorkerOptions,
    stop: &Arc<AtomicBool>,
) -> Result<(), String> {
    let config = client_config(&options.cluster);
    let mut client = Client::new(coordinator_addr, config.clone());

    let (worker_id, heartbeat_interval_ms) = match rpc(
        &mut client,
        &Msg::Register {
            name: options.name.clone(),
        },
    )? {
        Msg::RegisterAck {
            worker_id,
            heartbeat_interval_ms,
        } => (worker_id, heartbeat_interval_ms),
        other => return Err(format!("unexpected register reply: {other:?}")),
    };

    // Heartbeats ride a dedicated connection so a long-running task
    // body never starves liveness.
    let heartbeat = spawn_heartbeat(
        coordinator_addr.to_string(),
        config,
        worker_id,
        Duration::from_millis(heartbeat_interval_ms.max(10)),
        options.telemetry,
        Arc::clone(stop),
    );

    let shard_source = ShardSource::new(coordinator_addr, &options.cluster);
    let result = pull_loop(&mut client, worker_id, options, &shard_source, stop);

    // Whatever ended the loop, stop heartbeating so the coordinator's
    // liveness sweep can reclaim our tasks.
    stop.store(true, Ordering::SeqCst);
    drop(client);
    let _ = heartbeat.join();
    result
}

fn spawn_heartbeat(
    addr: String,
    config: ClientConfig,
    worker_id: u64,
    interval: Duration,
    telemetry: bool,
    stop: Arc<AtomicBool>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let mut client = Client::new(addr, config);
        while !stop.load(Ordering::SeqCst) {
            // Failures are fine: the coordinator may be briefly busy or
            // gone; the pull loop owns the fatal-error decision.
            // Telemetry piggybacks the full metrics snapshot — the
            // coordinator re-labels and federates it per worker name.
            let metrics = if telemetry {
                dasc_obs::global().snapshot()
            } else {
                MetricsSnapshot::default()
            };
            let _ = rpc(&mut client, &Msg::Heartbeat { worker_id, metrics });
            // Sleep in small slices so shutdown isn't delayed by a
            // long heartbeat interval.
            let deadline = std::time::Instant::now() + interval;
            while std::time::Instant::now() < deadline && !stop.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    })
}

fn pull_loop(
    client: &mut Client,
    worker_id: u64,
    options: &WorkerOptions,
    shard_source: &ShardSource,
    stop: &AtomicBool,
) -> Result<(), String> {
    let mut assignments_taken = 0usize;
    let mut consecutive_failures = 0usize;
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        let reply = match rpc(client, &Msg::RequestTask { worker_id }) {
            Ok(r) => {
                consecutive_failures = 0;
                r
            }
            Err(e) => {
                consecutive_failures += 1;
                if consecutive_failures >= 3 {
                    return Err(format!("coordinator unreachable: {e}"));
                }
                std::thread::sleep(options.cluster.rpc_backoff_base);
                continue;
            }
        };
        match reply {
            Msg::AssignTask { task } => {
                assignments_taken += 1;
                if options
                    .die_after_assignments
                    .is_some_and(|n| assignments_taken >= n)
                {
                    // Simulated crash: vanish with the task in flight.
                    stop.store(true, Ordering::SeqCst);
                    client.disconnect();
                    return Ok(());
                }
                let task_id = task.task_id;
                let report =
                    match execute_task_traced_with(task, &options.cluster, Some(shard_source)) {
                        (Ok(output), spans) => Msg::TaskDone {
                            worker_id,
                            task_id,
                            output,
                            spans,
                        },
                        (Err(error), _) => Msg::TaskFailed {
                            worker_id,
                            task_id,
                            error,
                        },
                    };
                rpc(client, &report)?;
            }
            Msg::NoTask { backoff_ms } => {
                std::thread::sleep(Duration::from_millis(backoff_ms.clamp(1, 1000)));
            }
            other => return Err(format!("unexpected reply to RequestTask: {other:?}")),
        }
    }
}

/// Execute one task body through the in-process MapReduce machinery.
/// A panic inside the body (the engine's failure unit) becomes an
/// error string for `TaskFailed`. Convenience wrapper over
/// [`execute_task_traced_with`] for callers that don't want the span
/// log; shard-addressed tasks fail without a [`ShardSource`].
pub fn execute_task(task: Task, cluster: &ClusterConfig) -> Result<TaskOutput, String> {
    execute_task_traced_with(task, cluster, None).0
}

/// [`execute_task`] with an explicit shard resolver for the
/// shard-addressed task kinds.
pub fn execute_task_with(
    task: Task,
    cluster: &ClusterConfig,
    shard_source: Option<&ShardSource>,
) -> Result<TaskOutput, String> {
    execute_task_traced_with(task, cluster, shard_source).0
}

/// [`execute_task_traced_with`] without a shard resolver — kept for
/// callers that only ever execute inline tasks.
pub fn execute_task_traced(
    task: Task,
    cluster: &ClusterConfig,
) -> (Result<TaskOutput, String>, Vec<SpanRecord>) {
    execute_task_traced_with(task, cluster, None)
}

/// Execute one task body and return its output together with the span
/// log recorded under the task's trace context. When the task carries
/// no context ([`Task::trace_parent`] is 0) the log is empty and the
/// body runs untraced.
///
/// Spans go to a *task-local* tracer, not the process-global one, so
/// concurrent workers sharing a process (tests, benches) never mix
/// their logs; timestamps are relative to the task body's start and are
/// rebased onto the job timeline by the coordinator.
pub fn execute_task_traced_with(
    task: Task,
    cluster: &ClusterConfig,
    shard_source: Option<&ShardSource>,
) -> (Result<TaskOutput, String>, Vec<SpanRecord>) {
    let tracer = Tracer::new();
    if task.trace_parent != 0 {
        tracer.enable();
    }
    let stage = match task.kind {
        TaskKind::MapSignatures { .. } | TaskKind::MapSignaturesRef { .. } => "map",
        TaskKind::ReduceBucket { .. } | TaskKind::ReduceBucketRef { .. } => "reduce",
    };
    let began = std::time::Instant::now();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
        || -> Result<TaskOutput, String> {
            match task.kind {
                TaskKind::MapSignatures {
                    num_bits: _,
                    planes,
                    start,
                    points,
                } => {
                    let _span = tracer.span("dist.task.map");
                    let model = SignatureModel::from_planes(planes);
                    let mapper = FnMapper::new(
                        |index: usize, point: Vec<f64>, emit: &mut dyn FnMut(u64, usize)| {
                            emit(model.hash(&point).bits(), index);
                        },
                    );
                    let inputs: Vec<(usize, Vec<f64>)> = points
                        .into_iter()
                        .enumerate()
                        .map(|(i, p)| (start + i, p))
                        .collect();
                    let hash_span = tracer.span("dist.task.map.hash");
                    let grouped = run_map_only(&mapper, inputs, cluster);
                    hash_span.finish();
                    Ok(TaskOutput::MapSignatures(grouped.records))
                }
                TaskKind::ReduceBucket {
                    bucket_id,
                    ki,
                    kernel,
                    seed,
                    lanczos_threshold,
                    members,
                    points,
                } => {
                    let _span = tracer.span("dist.task.reduce");
                    let reducer = FnReducer::new(
                        move |bucket_id: usize,
                              member_points: Vec<(usize, Vec<f64>)>,
                              emit: &mut dyn FnMut((usize, usize, usize))| {
                            let sub: Vec<Vec<f64>> =
                                member_points.iter().map(|(_, p)| p.clone()).collect();
                            let c = cluster_bucket(
                                &sub,
                                ki,
                                kernel,
                                lanczos_threshold,
                                seed,
                                bucket_id,
                            );
                            for (local, &(point, _)) in member_points.iter().enumerate() {
                                emit((point, bucket_id, c.assignments[local]));
                            }
                        },
                    );
                    let values: Vec<(usize, Vec<f64>)> = members.into_iter().zip(points).collect();
                    let cluster_span = tracer.span("dist.task.reduce.cluster");
                    let reduced = reduce_groups(&reducer, vec![(bucket_id, values)], cluster);
                    cluster_span.finish();
                    Ok(TaskOutput::ReduceBucket(reduced.records))
                }
                TaskKind::MapSignaturesRef {
                    num_bits: _,
                    planes,
                    manifest,
                    start,
                    len,
                } => {
                    let _span = tracer.span("dist.task.map");
                    let source = shard_source
                        .ok_or("shard-addressed task but this worker has no shard source")?;
                    let model = SignatureModel::from_planes(planes);
                    let hash_span = tracer.span("dist.task.map.hash");
                    // Walk the global range shard by shard. Grouping by
                    // signature bits matches the inline path's shuffle
                    // grouping; the coordinator merge is per-point and
                    // order-insensitive either way.
                    let mut groups: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
                    let mut i = start;
                    let end = start + len;
                    while i < end {
                        let (s, r) = manifest.locate(i);
                        let shard = source.shard(&manifest, s)?;
                        let take = (shard.rows() - r).min(end - i);
                        for j in 0..take {
                            let bits = model.hash(shard.row(r + j)).bits();
                            groups.entry(bits).or_default().push(i + j);
                        }
                        i += take;
                    }
                    hash_span.finish();
                    Ok(TaskOutput::MapSignatures(groups.into_iter().collect()))
                }
                TaskKind::ReduceBucketRef {
                    bucket_id,
                    ki,
                    kernel,
                    seed,
                    lanczos_threshold,
                    manifest,
                    members,
                } => {
                    let _span = tracer.span("dist.task.reduce");
                    let source = shard_source
                        .ok_or("shard-addressed task but this worker has no shard source")?;
                    // Gather the bucket's rows straight into one flat
                    // buffer — the same layout `cluster_bucket` builds
                    // from its nested input, so the numerics agree.
                    let dim = manifest.dim as usize;
                    let mut flat = Vec::with_capacity(members.len() * dim);
                    for &m in &members {
                        let (s, r) = manifest.locate(m);
                        let shard = source.shard(&manifest, s)?;
                        flat.extend_from_slice(shard.row(r));
                    }
                    let cluster_span = tracer.span("dist.task.reduce.cluster");
                    let c = cluster_bucket_flat(
                        &FlatPoints::from_flat(flat, dim),
                        ki,
                        kernel,
                        lanczos_threshold,
                        seed,
                        bucket_id,
                    );
                    cluster_span.finish();
                    Ok(TaskOutput::ReduceBucket(
                        members
                            .iter()
                            .enumerate()
                            .map(|(local, &point)| (point, bucket_id, c.assignments[local]))
                            .collect(),
                    ))
                }
            }
        },
    ));
    dasc_obs::global().observe(
        &labeled("dasc_dist_task_duration_us", "stage", stage),
        began.elapsed().as_micros() as u64,
    );
    let spans = tracer.drain();
    let result = match result {
        Ok(r) => r,
        Err(panic) => {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "task panicked".to_string());
            Err(format!("task panicked: {msg}"))
        }
    };
    (result, spans)
}
