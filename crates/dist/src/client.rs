//! Typed RPC helpers and the job-submission client.

use std::time::Duration;

use dasc_mapreduce::ClusterConfig;
use dasc_net::{Client, ClientConfig};

use crate::proto::{stage, JobOutcome, JobSpec, Msg};

/// Derive `dasc-net` client tuning from the shared cluster knob set.
pub fn client_config(cluster: &ClusterConfig) -> ClientConfig {
    ClientConfig {
        connect_timeout: cluster.rpc_connect_timeout,
        read_timeout: cluster.rpc_read_timeout,
        write_timeout: cluster.rpc_write_timeout,
        backoff_base: cluster.rpc_backoff_base,
        backoff_max: cluster.rpc_backoff_max,
        max_connect_attempts: cluster.rpc_max_connect_attempts,
    }
}

/// One typed request/reply round trip.
pub fn rpc(client: &mut Client, msg: &Msg) -> Result<Msg, String> {
    let reply = client
        .call(msg.msg_type() as u16, &msg.encode_payload())
        .map_err(|e| format!("rpc to {}: {e}", client.addr()))?;
    Msg::decode_frame(reply.msg_type, &reply.payload)
        .map_err(|e| format!("bad reply from {}: {e}", client.addr()))
}

/// Submit a DASC job to a coordinator and poll it to completion.
pub struct JobClient {
    client: Client,
    poll_interval: Duration,
    last_job_id: Option<u64>,
}

impl JobClient {
    /// Client for the coordinator at `addr`, with RPC tuning from the
    /// shared cluster knobs.
    pub fn connect(addr: impl Into<String>, cluster: &ClusterConfig) -> Self {
        Self {
            client: Client::new(addr, client_config(cluster)),
            poll_interval: cluster.heartbeat_interval / 2,
            last_job_id: None,
        }
    }

    /// Submit `spec`, block until the job finishes, return the outcome.
    /// `progress` is called on every poll with `(stage, done, total)`.
    pub fn run(
        &mut self,
        spec: JobSpec,
        mut progress: impl FnMut(u8, u64, u64),
    ) -> Result<JobOutcome, String> {
        let job_id = match rpc(&mut self.client, &Msg::SubmitJob { spec })? {
            Msg::JobAccepted { job_id } => job_id,
            Msg::JobError { message } => return Err(message),
            other => return Err(format!("unexpected submit reply: {other:?}")),
        };
        self.last_job_id = Some(job_id);
        loop {
            match rpc(&mut self.client, &Msg::PollJob { job_id })? {
                Msg::JobPending {
                    stage: s,
                    done,
                    total,
                } => {
                    progress(s, done, total);
                    std::thread::sleep(self.poll_interval);
                }
                Msg::JobResult { outcome } => {
                    progress(stage::FINISH, outcome.assignments.len() as u64, 0);
                    return Ok(outcome);
                }
                Msg::JobError { message } => return Err(message),
                other => return Err(format!("unexpected poll reply: {other:?}")),
            }
        }
    }

    /// Fetch the coordinator's *federated* Prometheus metrics snapshot
    /// (its own registry plus every worker's `worker="<name>"` series).
    pub fn metrics(&mut self) -> Result<String, String> {
        match rpc(&mut self.client, &Msg::MetricsRequest)? {
            Msg::MetricsReply { text } => Ok(text),
            Msg::JobError { message } => Err(message),
            other => Err(format!("unexpected metrics reply: {other:?}")),
        }
    }

    /// The id of the most recently submitted job, if any.
    pub fn last_job_id(&self) -> Option<u64> {
        self.last_job_id
    }

    /// Fetch the merged Chrome trace JSON for `job_id` (the job must
    /// have been submitted with [`JobSpec::collect_trace`]).
    pub fn trace_json(&mut self, job_id: u64) -> Result<String, String> {
        match rpc(&mut self.client, &Msg::TraceRequest { job_id })? {
            Msg::TraceReply { json } => Ok(json),
            Msg::JobError { message } => Err(message),
            other => Err(format!("unexpected trace reply: {other:?}")),
        }
    }
}
