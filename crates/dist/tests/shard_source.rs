//! Worker-side shard cache integration: a [`ShardSource`] resolving
//! shards from a live coordinator exercises the full
//! miss → fetch → verify → hit → evict lifecycle over real RPCs.
//!
//! This test lives in its own binary because it pins the cache
//! capacity through `DASC_SHARD_CACHE_BYTES`, which every
//! `ShardSource` in the process reads at construction.

use std::time::Duration;

use dasc_core::DascConfig;
use dasc_data::{dataset_to_store, Dataset, SyntheticConfig};
use dasc_dist::{worker, Coordinator, JobClient, JobData, JobSpec, ShardSource, WorkerOptions};
use dasc_mapreduce::ClusterConfig;

fn test_cluster() -> ClusterConfig {
    let mut c = ClusterConfig::emr(2);
    c.records_per_split = 64;
    c.heartbeat_interval = Duration::from_millis(50);
    c.worker_liveness_timeout = Duration::from_millis(800);
    c.rpc_connect_timeout = Duration::from_millis(500);
    c.rpc_read_timeout = Duration::from_secs(5);
    c.rpc_write_timeout = Duration::from_secs(5);
    c.rpc_backoff_base = Duration::from_millis(10);
    c.rpc_backoff_max = Duration::from_millis(100);
    c
}

#[test]
fn shard_source_miss_hit_eviction_against_live_coordinator() {
    let points = SyntheticConfig::blobs(96, 8, 3).seed(23).generate().points;
    let dir = std::env::temp_dir().join(format!("dasc-shardsource-{}.dstr", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let manifest =
        dataset_to_store(&Dataset::new(points.clone(), None, "cache"), &dir, 16).expect("pack");
    assert!(manifest.shards.len() >= 4, "want several shards to evict");

    // Capacity for at most two resident shards. A shard's resident
    // cost is at least its raw file bytes (plus a decoded copy when
    // the fetched buffer lands unaligned), so with 2×raw + slack the
    // third distinct shard must displace the least-recently-used one
    // whichever way the allocator aligned the buffers.
    let per_shard = manifest.shards[0].byte_len as usize;
    std::env::set_var("DASC_SHARD_CACHE_BYTES", (2 * per_shard + 64).to_string());

    let cluster = test_cluster();
    let coordinator = Coordinator::start("127.0.0.1:0", cluster.clone()).expect("coordinator");
    let addr = coordinator.addr().to_string();
    let w = worker::spawn(&addr, WorkerOptions::named("cache-w"));

    // A ref job registers the dataset with the coordinator's name-node
    // table (and proves the tiny cache still completes a real job).
    let config = DascConfig::for_dataset(points.len(), 3);
    let mut client = JobClient::connect(&addr, &cluster);
    let outcome = client
        .run(
            JobSpec {
                data: JobData::Ref {
                    path: dir.to_string_lossy().into_owned(),
                    content_hash: manifest.content_hash,
                },
                k: config.k,
                kernel: config.kernel,
                num_bits: 0,
                seed: config.seed,
                consolidate: config.consolidate,
                collect_trace: false,
            },
            |_, _, _| {},
        )
        .expect("ref job");
    assert_eq!(outcome.assignments.len(), points.len());

    // Now drive a fresh ShardSource by hand and watch the counters.
    let reg = dasc_obs::global();
    let hits0 = reg.counter_value("dasc_store_shard_cache_hits_total");
    let miss0 = reg.counter_value("dasc_store_shard_cache_misses_total");
    let evict0 = reg.counter_value("dasc_store_shard_cache_evictions_total");
    let served0 = reg.counter_value("dasc_store_shards_served_total");

    let source = ShardSource::new(addr.clone(), &cluster);
    let s0 = source.shard(&manifest, 0).expect("shard 0 fetch");
    assert_eq!(s0.rows(), 16);
    assert_eq!(s0.row(0), &points[0][..]);
    source.shard(&manifest, 0).expect("shard 0 hit");
    source.shard(&manifest, 1).expect("shard 1 fetch");
    // Third distinct shard exceeds capacity: the LRU (shard 0) goes.
    source.shard(&manifest, 2).expect("shard 2 fetch");
    assert!(source.cache().resident_bytes() <= source.cache().capacity_bytes());
    source.shard(&manifest, 0).expect("shard 0 refetch");

    assert_eq!(
        reg.counter_value("dasc_store_shard_cache_hits_total") - hits0,
        1
    );
    assert_eq!(
        reg.counter_value("dasc_store_shard_cache_misses_total") - miss0,
        4
    );
    assert!(reg.counter_value("dasc_store_shard_cache_evictions_total") - evict0 >= 1);
    assert_eq!(
        reg.counter_value("dasc_store_shards_served_total") - served0,
        4,
        "every miss is a coordinator-served fetch"
    );

    // Failure paths surface as errors, not panics: an index past the
    // table, and a dataset the coordinator has never opened.
    let err = source
        .shard(&manifest, manifest.shards.len())
        .expect_err("out of range");
    assert!(err.contains("out of range"), "{err}");
    let mut stale = manifest.clone();
    stale.content_hash ^= 0xDEAD;
    let err = source.shard(&stale, 0).expect_err("unknown dataset");
    assert!(err.contains("unknown dataset"), "{err}");

    w.shutdown().expect("w");
    coordinator.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
