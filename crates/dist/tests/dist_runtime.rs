//! End-to-end tests of the coordinator/worker runtime, including the
//! fault-injection scenario: a worker dies mid-map, its task is
//! re-queued, and the job still finishes bit-identical to the
//! in-process engine.

use std::time::Duration;

use dasc_core::{Dasc, DascConfig};
use dasc_data::{dataset_to_store, Dataset, SyntheticConfig};
use dasc_dist::{worker, Coordinator, JobClient, JobData, JobSpec, WorkerOptions};
use dasc_mapreduce::ClusterConfig;

/// Fast-failure-detection cluster knobs for tests: sub-second
/// heartbeats and liveness so a killed worker is reclaimed quickly.
fn test_cluster() -> ClusterConfig {
    let mut c = ClusterConfig::emr(2);
    c.records_per_split = 64;
    c.heartbeat_interval = Duration::from_millis(50);
    c.worker_liveness_timeout = Duration::from_millis(800);
    c.rpc_connect_timeout = Duration::from_millis(500);
    c.rpc_read_timeout = Duration::from_secs(5);
    c.rpc_write_timeout = Duration::from_secs(5);
    c.rpc_backoff_base = Duration::from_millis(10);
    c.rpc_backoff_max = Duration::from_millis(100);
    c
}

fn blobs(n: usize, k: usize) -> Vec<Vec<f64>> {
    SyntheticConfig::blobs(n, 8, k).seed(11).generate().points
}

fn spec_for(points: &[Vec<f64>], config: &DascConfig) -> JobSpec {
    JobSpec {
        data: JobData::Inline {
            points: points.to_vec(),
        },
        k: config.k,
        kernel: config.kernel,
        num_bits: 0, // for_dataset default, same as the baseline config
        seed: config.seed,
        consolidate: config.consolidate,
        collect_trace: false,
    }
}

#[test]
fn two_workers_match_in_process_engine() {
    let points = blobs(400, 4);
    let config = DascConfig::for_dataset(points.len(), 4);
    let baseline =
        Dasc::new(config.clone()).run_distributed(&points, &ClusterConfig::emr_default());

    let cluster = test_cluster();
    let coordinator = Coordinator::start("127.0.0.1:0", cluster.clone()).expect("coordinator");
    let addr = coordinator.addr().to_string();
    let w1 = worker::spawn(&addr, WorkerOptions::named("w1"));
    let w2 = worker::spawn(&addr, WorkerOptions::named("w2"));

    let mut client = JobClient::connect(&addr, &cluster);
    let outcome = client
        .run(spec_for(&points, &config), |_, _, _| {})
        .expect("distributed job");

    assert_eq!(outcome.assignments, baseline.clustering.assignments);
    assert_eq!(outcome.num_clusters, baseline.clustering.num_clusters);
    assert_eq!(outcome.num_buckets, baseline.num_buckets);
    assert!(outcome.workers_used >= 1);
    assert!(outcome.shuffle_records > 0);
    assert!(outcome.shuffle_bytes > 0);

    w1.shutdown().expect("w1");
    w2.shutdown().expect("w2");
    coordinator.shutdown();
}

#[test]
fn killed_worker_mid_map_recovers_and_matches() {
    // Enough points for several map waves so the dying worker is very
    // likely to take its fatal assignment while maps are outstanding.
    let points = blobs(600, 4);
    let config = DascConfig::for_dataset(points.len(), 4);
    let baseline =
        Dasc::new(config.clone()).run_distributed(&points, &ClusterConfig::emr_default());

    let cluster = test_cluster();
    let coordinator = Coordinator::start("127.0.0.1:0", cluster.clone()).expect("coordinator");
    let addr = coordinator.addr().to_string();

    // Victim: accepts one task, then vanishes with it in flight.
    let victim = worker::spawn(
        &addr,
        WorkerOptions {
            die_after_assignments: Some(1),
            ..WorkerOptions::named("victim")
        },
    );
    let survivor = worker::spawn(&addr, WorkerOptions::named("survivor"));

    let mut client = JobClient::connect(&addr, &cluster);
    let outcome = client
        .run(spec_for(&points, &config), |_, _, _| {})
        .expect("job survives a worker death");

    // The victim died holding a task: the job must have retried it.
    assert!(
        outcome.task_retries >= 1,
        "expected at least one retry, got {}",
        outcome.task_retries
    );
    victim.wait().expect("victim exits cleanly");

    // Bit-identical to the in-process engine despite the death.
    assert_eq!(outcome.assignments, baseline.clustering.assignments);
    assert_eq!(outcome.num_clusters, baseline.clustering.num_clusters);
    assert_eq!(outcome.num_buckets, baseline.num_buckets);

    survivor.shutdown().expect("survivor");
    coordinator.shutdown();
}

/// Pack `points` into a fresh temp `.dstr` store and return
/// `(store dir, Ref job data)` for submission.
fn packed_ref(points: &[Vec<f64>], tag: &str, shard_rows: usize) -> (std::path::PathBuf, JobData) {
    let dir = std::env::temp_dir().join(format!(
        "dasc-dist-{tag}-{}-{shard_rows}.dstr",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    let manifest = dataset_to_store(&Dataset::new(points.to_vec(), None, tag), &dir, shard_rows)
        .expect("pack store");
    let data = JobData::Ref {
        path: dir.to_string_lossy().into_owned(),
        content_hash: manifest.content_hash,
    };
    (dir, data)
}

#[test]
fn ref_job_with_killed_worker_matches_inline_bit_identically() {
    // The acceptance bar for the shard-addressed path: a dataset-ref
    // job must produce bit-identical labels to the inline path — here
    // with a worker dying mid-job so retries and shard re-fetches are
    // exercised too.
    let points = blobs(600, 4);
    let config = DascConfig::for_dataset(points.len(), 4);
    let baseline =
        Dasc::new(config.clone()).run_distributed(&points, &ClusterConfig::emr_default());
    // Shards deliberately smaller than the dataset so ref tasks span
    // several shard fetches.
    let (dir, ref_data) = packed_ref(&points, "refkill", 64);

    let cluster = test_cluster();
    let coordinator = Coordinator::start("127.0.0.1:0", cluster.clone()).expect("coordinator");
    let addr = coordinator.addr().to_string();
    let victim = worker::spawn(
        &addr,
        WorkerOptions {
            die_after_assignments: Some(1),
            ..WorkerOptions::named("ref-victim")
        },
    );
    let survivor = worker::spawn(&addr, WorkerOptions::named("ref-survivor"));

    // The ref job runs first, while the victim is still alive: its
    // fatal assignment lands mid-job and the task is retried elsewhere.
    let mut client = JobClient::connect(&addr, &cluster);
    let mut ref_spec = spec_for(&points, &config);
    ref_spec.data = ref_data;
    let by_ref = client
        .run(ref_spec, |_, _, _| {})
        .expect("ref job survives a worker death");
    assert!(
        by_ref.task_retries >= 1,
        "expected at least one retry, got {}",
        by_ref.task_retries
    );
    victim.wait().expect("victim exits cleanly");

    let inline = client
        .run(spec_for(&points, &config), |_, _, _| {})
        .expect("inline job");

    assert_eq!(by_ref.assignments, baseline.clustering.assignments);
    assert_eq!(by_ref.assignments, inline.assignments);
    assert_eq!(by_ref.num_clusters, inline.num_clusters);
    assert_eq!(by_ref.num_buckets, inline.num_buckets);
    // Tasks carry shard tables instead of points: the shuffled volume
    // must drop well below the inline job's.
    assert!(
        by_ref.shuffle_bytes * 2 < inline.shuffle_bytes,
        "ref job shuffled {} bytes vs inline {}",
        by_ref.shuffle_bytes,
        inline.shuffle_bytes
    );

    survivor.shutdown().expect("survivor");
    coordinator.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ref_job_rejects_content_hash_mismatch() {
    let points = blobs(120, 3);
    let config = DascConfig::for_dataset(points.len(), 3);
    let (dir, ref_data) = packed_ref(&points, "refhash", 32);

    let cluster = test_cluster();
    let coordinator = Coordinator::start("127.0.0.1:0", cluster.clone()).expect("coordinator");
    let addr = coordinator.addr().to_string();
    let w = worker::spawn(&addr, WorkerOptions::named("hash-w"));

    let mut client = JobClient::connect(&addr, &cluster);
    let mut spec = spec_for(&points, &config);
    spec.data = match ref_data {
        JobData::Ref { path, content_hash } => JobData::Ref {
            path,
            content_hash: content_hash ^ 1,
        },
        other => other,
    };
    let err = client
        .run(spec, |_, _, _| {})
        .expect_err("stale content hash must be refused");
    assert!(err.contains("content hash"), "unexpected error: {err}");

    // A job against a path that does not exist fails cleanly too.
    let mut spec = spec_for(&points, &config);
    spec.data = JobData::Ref {
        path: "/nonexistent/nowhere.dstr".into(),
        content_hash: 7,
    };
    client
        .run(spec, |_, _, _| {})
        .expect_err("missing store must be refused");

    w.shutdown().expect("w");
    coordinator.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_expose_dist_counters() {
    let points = blobs(200, 3);
    let config = DascConfig::for_dataset(points.len(), 3);

    let cluster = test_cluster();
    let coordinator = Coordinator::start("127.0.0.1:0", cluster.clone()).expect("coordinator");
    let addr = coordinator.addr().to_string();
    let w = worker::spawn(&addr, WorkerOptions::named("w"));

    let mut client = JobClient::connect(&addr, &cluster);
    client
        .run(spec_for(&points, &config), |_, _, _| {})
        .expect("job");
    let text = client.metrics().expect("metrics");
    for series in [
        "dasc_dist_tasks_assigned_total",
        "dasc_dist_tasks_completed_total",
        "dasc_dist_workers_registered_total",
        "dasc_dist_jobs_total",
        "dasc_dist_shuffle_records_total",
        "dasc_dist_heartbeats_total",
        "dasc_dist_workers_connected",
        "dasc_net_frames_sent_total",
        "dasc_net_rpcs_total",
    ] {
        assert!(text.contains(series), "missing {series} in:\n{text}");
    }

    w.shutdown().expect("w");
    coordinator.shutdown();
}

/// Plain-text HTTP GET against the coordinator's observability sidecar.
fn http_get(addr: &str, path: &str) -> (u16, String) {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect http");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn traced_job_merges_worker_lanes_and_federates_metrics() {
    let points = blobs(400, 4);
    let config = DascConfig::for_dataset(points.len(), 4);

    let cluster = test_cluster();
    let mut coordinator = Coordinator::start("127.0.0.1:0", cluster.clone()).expect("coordinator");
    let http_addr = coordinator
        .serve_http("127.0.0.1:0")
        .expect("http sidecar")
        .to_string();
    let addr = coordinator.addr().to_string();
    let w1 = worker::spawn(&addr, WorkerOptions::named("tw1"));
    let w2 = worker::spawn(&addr, WorkerOptions::named("tw2"));

    let mut client = JobClient::connect(&addr, &cluster);
    let mut spec = spec_for(&points, &config);
    spec.collect_trace = true;
    client.run(spec, |_, _, _| {}).expect("traced job");
    let job_id = client.last_job_id().expect("job id");

    // The merged trace: a coordinator lane with the job/stage spans
    // plus one lane per worker that completed a task.
    let json = client.trace_json(job_id).expect("trace");
    let events = dasc_serve::JsonValue::parse(&json).expect("trace parses");
    let events = events.as_array().expect("trace is an array");
    let lane_names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("process_name"))
        .filter_map(|e| e.get("args")?.get("name")?.as_str())
        .collect();
    assert!(lane_names.contains(&"coordinator"), "lanes: {lane_names:?}");
    assert!(
        lane_names.iter().any(|n| *n == "tw1" || *n == "tw2"),
        "no worker lane in {lane_names:?}"
    );
    let span_names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
        .filter_map(|e| e.get("name")?.as_str())
        .collect();
    for expected in ["dist.job", "dist.stage1", "dist.stage2", "dist.task.map"] {
        assert!(
            span_names.contains(&expected),
            "missing span {expected} in {span_names:?}"
        );
    }

    // Heartbeats federate both workers' snapshots under their names,
    // and coordinator-side task accounting carries stage+worker labels.
    let give_up = std::time::Instant::now() + Duration::from_secs(5);
    let text = loop {
        let text = client.metrics().expect("metrics");
        if text.contains("worker=\"tw1\"") && text.contains("worker=\"tw2\"") {
            break text;
        }
        assert!(
            std::time::Instant::now() < give_up,
            "workers never federated:\n{text}"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(text.contains("dasc_dist_task_duration_us_count{stage=\"map\"}"));
    assert!(text.contains("dasc_dist_task_duration_us_count{stage=\"reduce\"}"));
    assert!(text.contains("dasc_dist_stragglers"));

    // The HTTP sidecar serves the same federated view plus a roster.
    let (status, body) = http_get(&http_addr, "/metrics");
    assert_eq!(status, 200);
    assert!(body.contains("dasc_dist_task_duration_us"));
    assert!(body.contains("worker=\"tw1\""), "no tw1 series in:\n{body}");
    let (status, roster) = http_get(&http_addr, "/workers");
    assert_eq!(status, 200);
    let roster = dasc_serve::JsonValue::parse(&roster).expect("roster parses");
    let names: Vec<&str> = roster
        .get("workers")
        .and_then(|w| w.as_array())
        .expect("workers array")
        .iter()
        .filter_map(|w| w.get("name")?.as_str())
        .collect();
    assert!(
        names.contains(&"tw1") && names.contains(&"tw2"),
        "{names:?}"
    );
    let (status, _) = http_get(&http_addr, "/nope");
    assert_eq!(status, 404);

    w1.shutdown().expect("w1");
    w2.shutdown().expect("w2");
    coordinator.shutdown();
}

#[test]
fn untraced_job_has_no_trace() {
    let points = blobs(200, 3);
    let config = DascConfig::for_dataset(points.len(), 3);

    let cluster = test_cluster();
    let coordinator = Coordinator::start("127.0.0.1:0", cluster.clone()).expect("coordinator");
    let addr = coordinator.addr().to_string();
    let w = worker::spawn(&addr, WorkerOptions::named("w"));

    let mut client = JobClient::connect(&addr, &cluster);
    client
        .run(spec_for(&points, &config), |_, _, _| {})
        .expect("job");
    let job_id = client.last_job_id().expect("job id");
    let err = client.trace_json(job_id).expect_err("no trace collected");
    assert!(err.contains("no trace"), "{err}");

    w.shutdown().expect("w");
    coordinator.shutdown();
}

#[test]
fn consolidation_off_also_matches() {
    let points = blobs(300, 3);
    let config = DascConfig::for_dataset(points.len(), 3).consolidate(false);
    let baseline =
        Dasc::new(config.clone()).run_distributed(&points, &ClusterConfig::emr_default());

    let cluster = test_cluster();
    let coordinator = Coordinator::start("127.0.0.1:0", cluster.clone()).expect("coordinator");
    let addr = coordinator.addr().to_string();
    let w = worker::spawn(&addr, WorkerOptions::named("w"));

    let mut client = JobClient::connect(&addr, &cluster);
    let outcome = client
        .run(spec_for(&points, &config), |_, _, _| {})
        .expect("job");
    assert_eq!(outcome.assignments, baseline.clustering.assignments);
    assert_eq!(outcome.num_clusters, baseline.clustering.num_clusters);

    w.shutdown().expect("w");
    coordinator.shutdown();
}
