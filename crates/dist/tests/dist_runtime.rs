//! End-to-end tests of the coordinator/worker runtime, including the
//! fault-injection scenario: a worker dies mid-map, its task is
//! re-queued, and the job still finishes bit-identical to the
//! in-process engine.

use std::time::Duration;

use dasc_core::{Dasc, DascConfig};
use dasc_data::SyntheticConfig;
use dasc_dist::{worker, Coordinator, JobClient, JobSpec, WorkerOptions};
use dasc_mapreduce::ClusterConfig;

/// Fast-failure-detection cluster knobs for tests: sub-second
/// heartbeats and liveness so a killed worker is reclaimed quickly.
fn test_cluster() -> ClusterConfig {
    let mut c = ClusterConfig::emr(2);
    c.records_per_split = 64;
    c.heartbeat_interval = Duration::from_millis(50);
    c.worker_liveness_timeout = Duration::from_millis(800);
    c.rpc_connect_timeout = Duration::from_millis(500);
    c.rpc_read_timeout = Duration::from_secs(5);
    c.rpc_write_timeout = Duration::from_secs(5);
    c.rpc_backoff_base = Duration::from_millis(10);
    c.rpc_backoff_max = Duration::from_millis(100);
    c
}

fn blobs(n: usize, k: usize) -> Vec<Vec<f64>> {
    SyntheticConfig::blobs(n, 8, k).seed(11).generate().points
}

fn spec_for(points: &[Vec<f64>], config: &DascConfig) -> JobSpec {
    JobSpec {
        points: points.to_vec(),
        k: config.k,
        kernel: config.kernel,
        num_bits: 0, // for_dataset default, same as the baseline config
        seed: config.seed,
        consolidate: config.consolidate,
    }
}

#[test]
fn two_workers_match_in_process_engine() {
    let points = blobs(400, 4);
    let config = DascConfig::for_dataset(points.len(), 4);
    let baseline =
        Dasc::new(config.clone()).run_distributed(&points, &ClusterConfig::emr_default());

    let cluster = test_cluster();
    let coordinator = Coordinator::start("127.0.0.1:0", cluster.clone()).expect("coordinator");
    let addr = coordinator.addr().to_string();
    let w1 = worker::spawn(&addr, WorkerOptions::named("w1"));
    let w2 = worker::spawn(&addr, WorkerOptions::named("w2"));

    let mut client = JobClient::connect(&addr, &cluster);
    let outcome = client
        .run(spec_for(&points, &config), |_, _, _| {})
        .expect("distributed job");

    assert_eq!(outcome.assignments, baseline.clustering.assignments);
    assert_eq!(outcome.num_clusters, baseline.clustering.num_clusters);
    assert_eq!(outcome.num_buckets, baseline.num_buckets);
    assert!(outcome.workers_used >= 1);
    assert!(outcome.shuffle_records > 0);
    assert!(outcome.shuffle_bytes > 0);

    w1.shutdown().expect("w1");
    w2.shutdown().expect("w2");
    coordinator.shutdown();
}

#[test]
fn killed_worker_mid_map_recovers_and_matches() {
    // Enough points for several map waves so the dying worker is very
    // likely to take its fatal assignment while maps are outstanding.
    let points = blobs(600, 4);
    let config = DascConfig::for_dataset(points.len(), 4);
    let baseline =
        Dasc::new(config.clone()).run_distributed(&points, &ClusterConfig::emr_default());

    let cluster = test_cluster();
    let coordinator = Coordinator::start("127.0.0.1:0", cluster.clone()).expect("coordinator");
    let addr = coordinator.addr().to_string();

    // Victim: accepts one task, then vanishes with it in flight.
    let victim = worker::spawn(
        &addr,
        WorkerOptions {
            die_after_assignments: Some(1),
            ..WorkerOptions::named("victim")
        },
    );
    let survivor = worker::spawn(&addr, WorkerOptions::named("survivor"));

    let mut client = JobClient::connect(&addr, &cluster);
    let outcome = client
        .run(spec_for(&points, &config), |_, _, _| {})
        .expect("job survives a worker death");

    // The victim died holding a task: the job must have retried it.
    assert!(
        outcome.task_retries >= 1,
        "expected at least one retry, got {}",
        outcome.task_retries
    );
    victim.wait().expect("victim exits cleanly");

    // Bit-identical to the in-process engine despite the death.
    assert_eq!(outcome.assignments, baseline.clustering.assignments);
    assert_eq!(outcome.num_clusters, baseline.clustering.num_clusters);
    assert_eq!(outcome.num_buckets, baseline.num_buckets);

    survivor.shutdown().expect("survivor");
    coordinator.shutdown();
}

#[test]
fn metrics_expose_dist_counters() {
    let points = blobs(200, 3);
    let config = DascConfig::for_dataset(points.len(), 3);

    let cluster = test_cluster();
    let coordinator = Coordinator::start("127.0.0.1:0", cluster.clone()).expect("coordinator");
    let addr = coordinator.addr().to_string();
    let w = worker::spawn(&addr, WorkerOptions::named("w"));

    let mut client = JobClient::connect(&addr, &cluster);
    client
        .run(spec_for(&points, &config), |_, _, _| {})
        .expect("job");
    let text = client.metrics().expect("metrics");
    for series in [
        "dasc_dist_tasks_assigned_total",
        "dasc_dist_tasks_completed_total",
        "dasc_dist_workers_registered_total",
        "dasc_dist_jobs_total",
        "dasc_dist_shuffle_records_total",
        "dasc_dist_heartbeats_total",
        "dasc_dist_workers_connected",
        "dasc_net_frames_sent_total",
        "dasc_net_rpcs_total",
    ] {
        assert!(text.contains(series), "missing {series} in:\n{text}");
    }

    w.shutdown().expect("w");
    coordinator.shutdown();
}

#[test]
fn consolidation_off_also_matches() {
    let points = blobs(300, 3);
    let config = DascConfig::for_dataset(points.len(), 3).consolidate(false);
    let baseline =
        Dasc::new(config.clone()).run_distributed(&points, &ClusterConfig::emr_default());

    let cluster = test_cluster();
    let coordinator = Coordinator::start("127.0.0.1:0", cluster.clone()).expect("coordinator");
    let addr = coordinator.addr().to_string();
    let w = worker::spawn(&addr, WorkerOptions::named("w"));

    let mut client = JobClient::connect(&addr, &cluster);
    let outcome = client
        .run(spec_for(&points, &config), |_, _, _| {})
        .expect("job");
    assert_eq!(outcome.assignments, baseline.clustering.assignments);
    assert_eq!(outcome.num_clusters, baseline.clustering.num_clusters);

    w.shutdown().expect("w");
    coordinator.shutdown();
}
