//! Property tests for the protocol bodies: every message type
//! round-trips through its wire form with arbitrary contents, and the
//! decoder rejects truncated or trailing-garbage payloads without
//! panicking — whatever the message.

use dasc_dist::{JobData, JobOutcome, JobSpec, Msg, Task, TaskKind, TaskOutput};
use dasc_kernel::Kernel;
use dasc_lsh::HashPlane;
use dasc_obs::{HistogramSnapshot, MetricsSnapshot, SpanRecord, HISTOGRAM_BUCKETS};
use dasc_store::{DatasetManifest, ShardMeta};
use proptest::prelude::*;

/// An arbitrary-but-valid metrics snapshot derived from the scalar
/// pool: counters/gauges keyed off the name, one histogram with counts
/// scattered over valid bucket indices.
fn snapshot_from(name: &str, ids: (u64, u64, u64)) -> MetricsSnapshot {
    let (a, b, c) = ids;
    let mut snap = MetricsSnapshot::default();
    snap.counters.insert(format!("{name}_total"), a);
    snap.gauges.insert(format!("{name}_depth"), b as i64);
    let mut buckets = [0u64; HISTOGRAM_BUCKETS];
    buckets[(a % HISTOGRAM_BUCKETS as u64) as usize] = b % 1000 + 1;
    buckets[(c % HISTOGRAM_BUCKETS as u64) as usize] += 1;
    snap.histograms.insert(
        format!("{name}_us"),
        HistogramSnapshot {
            count: buckets.iter().sum(),
            sum: a.wrapping_add(c),
            buckets,
        },
    );
    snap
}

/// An arbitrary span log: ids 1..=n, each span parented on the
/// previous one except the root, timestamps derived from `members`.
fn spans_from(members: &[usize]) -> Vec<SpanRecord> {
    members
        .iter()
        .take(6)
        .enumerate()
        .map(|(i, &m)| SpanRecord {
            id: i as u64 + 1,
            parent: (i > 0).then_some(i as u64),
            name: format!("span{i}"),
            thread: m as u64 % 4,
            start_us: m as u64,
            dur_us: m as u64 % 512,
        })
        .collect()
}

fn kernel_from(seed: u64, a: f64, b: f64) -> Kernel {
    match seed % 4 {
        0 => Kernel::Gaussian {
            sigma: a.abs() + 0.01,
        },
        1 => Kernel::Linear,
        2 => Kernel::Polynomial {
            degree: (seed % 5) as u32 + 1,
            c: b,
        },
        _ => Kernel::Laplacian {
            gamma: a.abs() + 0.01,
        },
    }
}

/// Build one of every message variant from a small pool of arbitrary
/// scalars/vectors, so the whole protocol surface is exercised per
/// case.
#[allow(clippy::too_many_arguments)]
fn all_messages(
    ids: (u64, u64, u64),
    name: String,
    points: Vec<Vec<f64>>,
    members: Vec<usize>,
    groups: Vec<(u64, Vec<usize>)>,
    records: Vec<(usize, usize, usize)>,
    planes: Vec<(usize, f64)>,
    kernel: Kernel,
) -> Vec<Msg> {
    let (a, b, c) = ids;
    let planes: Vec<HashPlane> = planes
        .into_iter()
        .map(|(dimension, threshold)| HashPlane {
            dimension,
            threshold,
        })
        .collect();
    let map_task = Task {
        job_id: a,
        task_id: b,
        attempt: (c % 8) as u32 + 1,
        trace_parent: c,
        kind: TaskKind::MapSignatures {
            num_bits: planes.len(),
            planes,
            start: c as usize % 1024,
            points: points.clone(),
        },
    };
    let reduce_task = Task {
        job_id: a,
        task_id: b.wrapping_add(1),
        attempt: 1,
        trace_parent: a % 2,
        kind: TaskKind::ReduceBucket {
            bucket_id: a as usize % 64,
            ki: b as usize % 16 + 1,
            kernel,
            seed: c,
            lanczos_threshold: 512,
            members: members.clone(),
            points: points.clone(),
        },
    };
    // A manifest shaped from the same scalar pool: shard row counts and
    // checksums vary per case, shard_rows stays nonzero.
    let manifest = DatasetManifest {
        content_hash: a ^ c,
        n: b % 100_000,
        dim: a % 64 + 1,
        has_labels: c & 1 == 0,
        shard_rows: b % 4096 + 1,
        shards: members
            .iter()
            .take(5)
            .map(|&m| ShardMeta {
                rows: m as u64,
                byte_len: m as u64 * 8 + 72,
                checksum: (m as u64).wrapping_mul(c),
            })
            .collect(),
    };
    let map_ref_task = Task {
        job_id: a,
        task_id: b.wrapping_add(2),
        attempt: 1,
        trace_parent: c % 2,
        kind: TaskKind::MapSignaturesRef {
            num_bits: 4,
            planes: vec![HashPlane {
                dimension: a as usize % 8,
                threshold: 0.5,
            }],
            manifest: manifest.clone(),
            start: a as usize % 1024,
            len: b as usize % 1024,
        },
    };
    let reduce_ref_task = Task {
        job_id: a,
        task_id: b.wrapping_add(3),
        attempt: (a % 4) as u32 + 1,
        trace_parent: 0,
        kind: TaskKind::ReduceBucketRef {
            bucket_id: c as usize % 64,
            ki: a as usize % 16 + 1,
            kernel,
            seed: c,
            lanczos_threshold: 512,
            manifest: manifest.clone(),
            members: members.clone(),
        },
    };
    vec![
        Msg::Register { name: name.clone() },
        Msg::RegisterAck {
            worker_id: a,
            heartbeat_interval_ms: b,
        },
        Msg::Heartbeat {
            worker_id: a,
            metrics: MetricsSnapshot::default(),
        },
        Msg::Heartbeat {
            worker_id: a,
            metrics: snapshot_from(&name, ids),
        },
        Msg::HeartbeatAck,
        Msg::RequestTask { worker_id: a },
        Msg::AssignTask { task: map_task },
        Msg::AssignTask { task: reduce_task },
        Msg::AssignTask { task: map_ref_task },
        Msg::AssignTask {
            task: reduce_ref_task,
        },
        Msg::NoTask { backoff_ms: c },
        Msg::TaskDone {
            worker_id: a,
            task_id: b,
            output: TaskOutput::MapSignatures(groups),
            spans: spans_from(&members),
        },
        Msg::TaskDone {
            worker_id: a,
            task_id: b,
            output: TaskOutput::ReduceBucket(records),
            spans: Vec::new(),
        },
        Msg::TaskAck,
        Msg::SubmitJob {
            spec: JobSpec {
                data: JobData::Inline { points },
                k: a as usize % 32 + 1,
                kernel,
                num_bits: b as usize % 64,
                seed: c,
                consolidate: a & 1 == 0,
                collect_trace: b & 1 == 0,
            },
        },
        Msg::SubmitJob {
            spec: JobSpec {
                data: JobData::Ref {
                    path: format!("/tmp/{name}.dstr"),
                    content_hash: a ^ c,
                },
                k: c as usize % 32 + 1,
                kernel,
                num_bits: a as usize % 64,
                seed: b,
                consolidate: c & 1 == 0,
                collect_trace: a & 1 == 0,
            },
        },
        Msg::ShardRequest {
            dataset: a ^ c,
            shard: (b % 100_000) as u32,
        },
        Msg::ShardReply {
            bytes: members.iter().map(|&m| m as u8).collect(),
        },
        Msg::JobAccepted { job_id: a },
        Msg::PollJob { job_id: a },
        Msg::JobPending {
            stage: (a % 4) as u8,
            done: b,
            total: c,
        },
        Msg::JobResult {
            outcome: JobOutcome {
                assignments: members.clone(),
                num_clusters: members.iter().max().map_or(0, |m| m + 1),
                num_buckets: a as usize % 128,
                workers_used: b % 64,
                stage1_us: a,
                stage2_us: b,
                shuffle_records: c,
                shuffle_bytes: a ^ b,
                task_retries: c % 5,
            },
        },
        Msg::JobError {
            message: name.clone(),
        },
        Msg::MetricsRequest,
        Msg::MetricsReply { text: name.clone() },
        Msg::TaskFailed {
            worker_id: a,
            task_id: b,
            error: name.clone(),
        },
        Msg::TraceRequest { job_id: a },
        Msg::TraceReply { json: name },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_message_type_roundtrips_with_arbitrary_contents(
        ids in (any::<u64>(), any::<u64>(), any::<u64>()),
        name_bytes in prop::collection::vec(any::<u8>(), 0..48),
        points in prop::collection::vec(
            prop::collection::vec(any::<f64>(), 0..6), 0..12),
        members in prop::collection::vec(0usize..10_000, 0..32),
        groups in prop::collection::vec(
            (any::<u64>(), prop::collection::vec(0usize..10_000, 0..8)), 0..8),
        records in prop::collection::vec(
            (0usize..10_000, 0usize..64, 0usize..16), 0..32),
        planes in prop::collection::vec((0usize..64, any::<f64>()), 0..12),
        kab in (any::<u64>(), any::<f64>(), any::<f64>()),
    ) {
        let name = String::from_utf8_lossy(&name_bytes).into_owned();
        let kernel = kernel_from(kab.0, kab.1, kab.2);
        for msg in all_messages(ids, name, points, members, groups, records, planes, kernel) {
            let payload = msg.encode_payload();
            let back = Msg::decode_frame(msg.msg_type() as u16, &payload);
            prop_assert_eq!(back.as_ref(), Ok(&msg));
        }
    }

    #[test]
    fn truncated_or_padded_payloads_never_decode(
        ids in (any::<u64>(), any::<u64>(), any::<u64>()),
        members in prop::collection::vec(0usize..10_000, 1..16),
        cut_seed in any::<u64>(),
        kab in (any::<u64>(), any::<f64>(), any::<f64>()),
    ) {
        let kernel = kernel_from(kab.0, kab.1, kab.2);
        for msg in all_messages(
            ids,
            "w".to_string(),
            vec![vec![0.5, -0.5]],
            members,
            vec![(3, vec![1, 2])],
            vec![(1, 2, 3)],
            vec![(0, 0.5)],
            kernel,
        ) {
            let payload = msg.encode_payload();
            if !payload.is_empty() {
                // Truncate somewhere strictly inside the payload.
                let cut = (cut_seed as usize) % payload.len();
                prop_assert!(
                    Msg::decode_frame(msg.msg_type() as u16, &payload[..cut]).is_err(),
                    "truncated {:?} decoded", msg.msg_type()
                );
            }
            // Trailing garbage must also be rejected.
            let mut padded = payload;
            padded.push(0xAA);
            prop_assert!(
                Msg::decode_frame(msg.msg_type() as u16, &padded).is_err(),
                "padded {:?} decoded", msg.msg_type()
            );
        }
    }
}
