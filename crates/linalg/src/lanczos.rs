//! Lanczos iteration with full reorthogonalization.
//!
//! This is the PARPACK substitute used by the PSC baseline (sparse t-NN
//! Laplacians) and by DASC on buckets large enough that a full dense
//! eigendecomposition would dominate. It computes the `k` algebraically
//! largest eigenpairs of any symmetric [`MatVec`] operator.
//!
//! Full (two-pass) reorthogonalization keeps the Krylov basis orthogonal
//! at O(m²n) cost — the subspaces here are small (`m ≲ 2k + 20`), so this
//! is cheaper and far more robust than selective reorthogonalization.
//!
//! The inner loops (`vector::{dot, axpy, norm2}` and the operator's
//! `matvec`) dispatch to the process kernel backend (see
//! [`crate::simd`]), so the Lanczos path is vectorized automatically
//! wherever the host supports AVX2+FMA or NEON.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::eigen::tridiagonal_eigen;
use crate::operator::MatVec;
use crate::tridiag::Tridiagonal;
use crate::vector;
use crate::Matrix;

/// Options controlling the Lanczos run.
#[derive(Clone, Debug)]
pub struct LanczosOptions {
    /// Number of leading (largest) eigenpairs requested.
    pub k: usize,
    /// Maximum Krylov subspace dimension. `None` picks
    /// `min(n, max(2k + 20, 40))`.
    pub max_subspace: Option<usize>,
    /// Residual tolerance on `‖A v − λ v‖` relative to `|λ_max|`.
    pub tol: f64,
    /// RNG seed for the starting vector (runs are deterministic).
    pub seed: u64,
}

impl LanczosOptions {
    /// Options for the `k` largest eigenpairs with default knobs.
    pub fn top(k: usize) -> Self {
        Self {
            k,
            max_subspace: None,
            tol: 1e-10,
            seed: 0x5ca1ab1e,
        }
    }
}

/// Result of a Lanczos run.
#[derive(Clone, Debug)]
pub struct LanczosResult {
    /// Ritz values, descending; length `min(k, n)`.
    pub eigenvalues: Vec<f64>,
    /// Matching Ritz vectors as columns of an `n × k` matrix.
    pub eigenvectors: Matrix,
    /// Krylov subspace dimension actually built.
    pub subspace_dim: usize,
    /// Whether all requested pairs met the residual tolerance.
    pub converged: bool,
}

/// Compute the `k` algebraically largest eigenpairs of a symmetric
/// operator.
///
/// Breakdowns (invariant subspaces, common for the block-diagonal
/// matrices DASC produces) are handled by restarting with a fresh random
/// direction orthogonal to the basis built so far.
///
/// # Panics
/// Panics if `opts.k == 0`.
pub fn lanczos<A: MatVec>(a: &A, opts: &LanczosOptions) -> LanczosResult {
    assert!(opts.k > 0, "lanczos: k must be positive");
    let n = a.dim();
    let k = opts.k.min(n);
    if n == 0 {
        return LanczosResult {
            eigenvalues: Vec::new(),
            eigenvectors: Matrix::zeros(0, 0),
            subspace_dim: 0,
            converged: true,
        };
    }

    let m = opts
        .max_subspace
        .unwrap_or_else(|| (2 * k + 20).max(40))
        .min(n)
        .max(k);

    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);
    // Krylov basis, one row per Lanczos vector (row-major friendly).
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut alphas: Vec<f64> = Vec::with_capacity(m);
    let mut betas: Vec<f64> = Vec::with_capacity(m);

    let mut q = random_unit_vector(n, &mut rng);
    let mut w = vec![0.0; n];

    while basis.len() < m {
        basis.push(q.clone());
        let j = basis.len() - 1;
        a.matvec(&basis[j], &mut w);
        if j > 0 {
            vector::axpy(-betas[j - 1], &basis[j - 1], &mut w);
        }
        let alpha = vector::dot(&basis[j], &w);
        alphas.push(alpha);
        vector::axpy(-alpha, &basis[j], &mut w);
        // Full reorthogonalization, twice ("twice is enough", Parlett).
        for _ in 0..2 {
            for b in &basis {
                vector::orthogonalize_against(b, &mut w);
            }
        }
        let beta = vector::norm2(&w);
        let scale = alphas
            .iter()
            .zip(betas.iter().chain(std::iter::once(&0.0)))
            .map(|(a, b)| a.abs() + b.abs())
            .fold(1.0_f64, f64::max);
        if beta <= f64::EPSILON * scale * 16.0 {
            // Invariant subspace: restart with a fresh orthogonal direction
            // if there is still room, otherwise stop.
            if basis.len() == m {
                betas.push(0.0);
                break;
            }
            match fresh_orthogonal_direction(n, &basis, &mut rng) {
                Some(fresh) => {
                    betas.push(0.0);
                    q = fresh;
                }
                None => {
                    betas.push(0.0);
                    break;
                }
            }
        } else {
            betas.push(beta);
            q = w.iter().map(|v| v / beta).collect();
        }
    }

    let dim = basis.len();
    // Assemble the projected tridiagonal matrix T (EISPACK layout: the
    // off-diagonal entry i couples rows i-1 and i).
    let mut off = vec![0.0; dim];
    off[1..dim].copy_from_slice(&betas[..dim - 1]);
    let tri = Tridiagonal {
        diagonal: alphas.clone(),
        off_diagonal: off,
        q: Matrix::identity(dim),
    };
    let small = tridiagonal_eigen(&tri);
    let (values, small_vecs) = small.top_k(k);

    // Ritz vectors: V = Qᵀ · s  (basis rows are the Lanczos vectors).
    let mut vectors = Matrix::zeros(n, values.len());
    #[allow(clippy::needless_range_loop)] // col indexes both factors
    for col in 0..values.len() {
        for (j, b) in basis.iter().enumerate() {
            let c = small_vecs[(j, col)];
            if c != 0.0 {
                for i in 0..n {
                    vectors[(i, col)] += c * b[i];
                }
            }
        }
    }

    // Residual check ‖A v − λ v‖ ≤ tol · max(1, |λ₁|).
    let lambda_scale = values.first().map(|v| v.abs()).unwrap_or(1.0).max(1.0);
    let mut converged = true;
    let mut av = vec![0.0; n];
    #[allow(clippy::needless_range_loop)] // col indexes values + vectors
    for col in 0..values.len() {
        let v = vectors.col(col);
        a.matvec(&v, &mut av);
        vector::axpy(-values[col], &v, &mut av);
        if vector::norm2(&av) > opts.tol.max(1e-12) * lambda_scale * 100.0 {
            converged = false;
        }
    }

    LanczosResult {
        eigenvalues: values,
        eigenvectors: vectors,
        subspace_dim: dim,
        converged,
    }
}

fn random_unit_vector(n: usize, rng: &mut ChaCha8Rng) -> Vec<f64> {
    let mut v: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    if vector::normalize(&mut v) == 0.0 {
        v[0] = 1.0;
    }
    v
}

/// Draw random vectors until one has a significant component outside the
/// span of `basis`; returns `None` once the basis is (numerically) full.
fn fresh_orthogonal_direction(
    n: usize,
    basis: &[Vec<f64>],
    rng: &mut ChaCha8Rng,
) -> Option<Vec<f64>> {
    if basis.len() >= n {
        return None;
    }
    for _ in 0..8 {
        let mut v = random_unit_vector(n, rng);
        for b in basis {
            vector::orthogonalize_against(b, &mut v);
        }
        if vector::normalize(&mut v) > 1e-8 {
            return Some(v);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_top_eigenpairs() {
        let n = 20;
        let a = Matrix::from_fn(n, n, |i, j| if i == j { (i + 1) as f64 } else { 0.0 });
        let res = lanczos(&a, &LanczosOptions::top(3));
        assert!(res.converged);
        assert!((res.eigenvalues[0] - 20.0).abs() < 1e-8);
        assert!((res.eigenvalues[1] - 19.0).abs() < 1e-8);
        assert!((res.eigenvalues[2] - 18.0).abs() < 1e-8);
    }

    #[test]
    fn matches_dense_eigensolver() {
        use rand::{Rng, SeedableRng};
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 30;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v: f64 = rng.gen_range(-1.0..1.0);
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        let dense = crate::symmetric_eigen(&a);
        let (dense_top, _) = dense.top_k(4);
        let res = lanczos(&a, &LanczosOptions::top(4));
        for (l, d) in res.eigenvalues.iter().zip(&dense_top) {
            assert!((l - d).abs() < 1e-6, "lanczos {l} vs dense {d}");
        }
    }

    #[test]
    fn block_diagonal_breakdown_recovers_both_blocks() {
        // Two disconnected blocks: a plain Krylov space from one start
        // vector may miss a block; the restart logic must find it.
        let mut a = Matrix::zeros(8, 8);
        for i in 0..4 {
            a[(i, i)] = 10.0;
        }
        for i in 4..8 {
            a[(i, i)] = 5.0;
        }
        let res = lanczos(&a, &LanczosOptions::top(6));
        assert!((res.eigenvalues[0] - 10.0).abs() < 1e-8);
        // Eigenvalue 5 must appear even though it lives in a separate
        // invariant subspace.
        assert!(res.eigenvalues.iter().any(|v| (v - 5.0).abs() < 1e-8));
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let n = 15;
        let a = Matrix::from_fn(n, n, |i, j| 1.0 / (1.0 + (i as f64 - j as f64).abs()));
        let res = lanczos(&a, &LanczosOptions::top(4));
        let v = &res.eigenvectors;
        let g = v.transpose().matmul(v);
        assert!(g.max_abs_diff(&Matrix::identity(4)) < 1e-6);
    }

    #[test]
    fn k_larger_than_n_is_clamped() {
        let a = Matrix::identity(3);
        let res = lanczos(&a, &LanczosOptions::top(10));
        assert_eq!(res.eigenvalues.len(), 3);
        for v in &res.eigenvalues {
            assert!((v - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Matrix::from_fn(12, 12, |i, j| ((i + j) % 5) as f64);
        let r1 = lanczos(&a, &LanczosOptions::top(2));
        let r2 = lanczos(&a, &LanczosOptions::top(2));
        assert_eq!(r1.eigenvalues, r2.eigenvalues);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let a = Matrix::identity(2);
        let mut opts = LanczosOptions::top(1);
        opts.k = 0;
        lanczos(&a, &opts);
    }
}
