//! Symmetric eigendecomposition: implicit-shift QL on the tridiagonal
//! form (EISPACK `tql2`), seeded by Householder reduction.
//!
//! The paper computes eigenvectors "using QR decomposition" after a
//! tridiagonal transform; QL with Wilkinson shifts is the numerically
//! preferred formulation of exactly that iteration.

use crate::tridiag::{tridiagonalize, Tridiagonal};
use crate::vector::hypot;
use crate::Matrix;

/// Eigendecomposition of a real symmetric matrix.
///
/// Eigenvalues are sorted ascending. Eigenvectors stay in the order QL
/// produced them, paired with a sort permutation; accessors materialize
/// only the columns a caller asks for, so `top_k(k)` costs `O(nk)`
/// instead of the full `O(n²)` sorted copy the old layout paid.
#[derive(Clone, Debug)]
pub struct SymmetricEigen {
    /// Eigenvalues in ascending order.
    pub eigenvalues: Vec<f64>,
    /// Unit eigenvectors as columns, in unsorted (QL) order.
    vectors: Matrix,
    /// `perm[j]` is the column of `vectors` matching `eigenvalues[j]`.
    perm: Vec<usize>,
}

impl SymmetricEigen {
    /// Order of the decomposed matrix.
    pub fn order(&self) -> usize {
        self.eigenvalues.len()
    }

    /// The unit eigenvector for `eigenvalues[j]` (ascending index).
    pub fn eigenvector(&self, j: usize) -> Vec<f64> {
        self.vectors.col(self.perm[j])
    }

    /// A single entry of the eigenvector for `eigenvalues[j]`.
    pub fn eigenvector_entry(&self, i: usize, j: usize) -> f64 {
        self.vectors[(i, self.perm[j])]
    }

    /// Materialize the full eigenvector matrix with columns sorted to
    /// match `eigenvalues`. `O(n²)` — prefer [`Self::top_k`],
    /// [`Self::bottom_k`] or [`Self::eigenvector`] when only a few
    /// columns are needed.
    pub fn eigenvectors_full(&self) -> Matrix {
        let n = self.order();
        let mut out = Matrix::zeros(n, n);
        for (dst, &src) in self.perm.iter().enumerate() {
            for i in 0..n {
                out[(i, dst)] = self.vectors[(i, src)];
            }
        }
        out
    }

    /// The `k` eigenpairs with the **largest** eigenvalues, as
    /// `(values, vectors)` with vectors stacked as columns, ordered by
    /// descending eigenvalue. This is what spectral clustering consumes;
    /// only the `k` requested columns are copied.
    pub fn top_k(&self, k: usize) -> (Vec<f64>, Matrix) {
        let n = self.order();
        let k = k.min(n);
        let mut values = Vec::with_capacity(k);
        let mut vectors = Matrix::zeros(n, k);
        for j in 0..k {
            let src = self.perm[n - 1 - j];
            values.push(self.eigenvalues[n - 1 - j]);
            for i in 0..n {
                vectors[(i, j)] = self.vectors[(i, src)];
            }
        }
        (values, vectors)
    }

    /// The `k` eigenpairs with the **smallest** eigenvalues (ascending).
    pub fn bottom_k(&self, k: usize) -> (Vec<f64>, Matrix) {
        let n = self.order();
        let k = k.min(n);
        let mut values = Vec::with_capacity(k);
        let mut vectors = Matrix::zeros(n, k);
        for j in 0..k {
            let src = self.perm[j];
            values.push(self.eigenvalues[j]);
            for i in 0..n {
                vectors[(i, j)] = self.vectors[(i, src)];
            }
        }
        (values, vectors)
    }
}

/// Maximum QL sweeps per eigenvalue before declaring failure to converge.
const MAX_QL_ITERATIONS: usize = 50;

/// Eigendecompose a symmetric tridiagonal matrix (EISPACK `tql2`),
/// rotating the accumulated basis in `tri.q` so the returned vectors are
/// eigenvectors of the *original* matrix.
pub fn tridiagonal_eigen(tri: &Tridiagonal) -> SymmetricEigen {
    let n = tri.order();
    let mut d = tri.diagonal.clone();
    let mut e = tri.off_diagonal.clone();
    let mut z = tri.q.clone();

    if n <= 1 {
        return SymmetricEigen {
            eigenvalues: d,
            vectors: z,
            perm: (0..n).collect(),
        };
    }

    // Shift the off-diagonal so e[i] couples i and i+1.
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;

    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find a small subdiagonal element to split the problem.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            assert!(
                iter <= MAX_QL_ITERATIONS,
                "tql2: eigenvalue {l} failed to converge after {MAX_QL_ITERATIONS} sweeps"
            );

            // Wilkinson shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = hypot(g, 1.0);
            let sign_r = if g >= 0.0 { r.abs() } else { -r.abs() };
            g = d[m] - d[l] + e[l] / (g + sign_r);
            let mut s = 1.0;
            let mut c = 1.0;
            let mut p = 0.0;

            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = hypot(f, g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Accumulate the rotation into the eigenvector basis.
                for k in 0..n {
                    f = z[(k, i + 1)];
                    z[(k, i + 1)] = s * z[(k, i)] + c * f;
                    z[(k, i)] = c * z[(k, i)] - s * f;
                }
            }
            if r == 0.0 && m > l {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }

    // Sort eigenvalues ascending; vectors stay where QL left them and
    // the permutation records the pairing (no n×n copy here).
    let mut perm: Vec<usize> = (0..n).collect();
    perm.sort_by(|&a, &b| d[a].partial_cmp(&d[b]).expect("NaN eigenvalue"));
    let eigenvalues: Vec<f64> = perm.iter().map(|&i| d[i]).collect();

    SymmetricEigen {
        eigenvalues,
        vectors: z,
        perm,
    }
}

/// Full eigendecomposition of a dense symmetric matrix.
///
/// # Panics
/// Panics if `a` is not square or the QL iteration fails to converge
/// (which for symmetric input does not happen in practice).
pub fn symmetric_eigen(a: &Matrix) -> SymmetricEigen {
    let tri = tridiagonalize(a);
    tridiagonal_eigen(&tri)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_decomposition(a: &Matrix, eig: &SymmetricEigen, tol: f64) {
        let n = a.nrows();
        // A v = λ v for every pair.
        for j in 0..n {
            let v = eig.eigenvector(j);
            let mut av = vec![0.0; n];
            a.matvec_into(&v, &mut av);
            for i in 0..n {
                assert!(
                    (av[i] - eig.eigenvalues[j] * v[i]).abs() < tol,
                    "residual too large for eigenpair {j}"
                );
            }
        }
        // Eigenvector matrix orthogonal.
        let q = eig.eigenvectors_full();
        let qtq = q.transpose().matmul(&q);
        assert!(qtq.max_abs_diff(&Matrix::identity(n)) < tol);
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = Matrix::from_rows(&[&[3.0, 0.0, 0.0], &[0.0, 1.0, 0.0], &[0.0, 0.0, 2.0]]);
        let eig = symmetric_eigen(&a);
        assert!((eig.eigenvalues[0] - 1.0).abs() < 1e-12);
        assert!((eig.eigenvalues[1] - 2.0).abs() < 1e-12);
        assert!((eig.eigenvalues[2] - 3.0).abs() < 1e-12);
        check_decomposition(&a, &eig, 1e-10);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let eig = symmetric_eigen(&a);
        assert!((eig.eigenvalues[0] - 1.0).abs() < 1e-12);
        assert!((eig.eigenvalues[1] - 3.0).abs() < 1e-12);
        check_decomposition(&a, &eig, 1e-10);
    }

    #[test]
    fn random_symmetric_10x10() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        let n = 10;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v: f64 = rng.gen_range(-1.0..1.0);
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        let eig = symmetric_eigen(&a);
        check_decomposition(&a, &eig, 1e-8);
        // Trace preserved.
        let trace: f64 = (0..n).map(|i| a[(i, i)]).sum();
        let sum: f64 = eig.eigenvalues.iter().sum();
        assert!((trace - sum).abs() < 1e-8);
    }

    #[test]
    fn top_k_orders_descending() {
        let a = Matrix::from_rows(&[&[3.0, 0.0, 0.0], &[0.0, 1.0, 0.0], &[0.0, 0.0, 2.0]]);
        let eig = symmetric_eigen(&a);
        let (vals, vecs) = eig.top_k(2);
        assert!((vals[0] - 3.0).abs() < 1e-12);
        assert!((vals[1] - 2.0).abs() < 1e-12);
        assert_eq!(vecs.shape(), (3, 2));
        // Top eigenvector of a diagonal matrix is the matching axis.
        assert!((vecs[(0, 0)].abs() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn bottom_k_orders_ascending() {
        let a = Matrix::from_rows(&[&[5.0, 0.0], &[0.0, -1.0]]);
        let eig = symmetric_eigen(&a);
        let (vals, _) = eig.bottom_k(1);
        assert!((vals[0] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn top_k_clamps_to_order() {
        let eig = symmetric_eigen(&Matrix::identity(2));
        let (vals, vecs) = eig.top_k(10);
        assert_eq!(vals.len(), 2);
        assert_eq!(vecs.ncols(), 2);
    }

    #[test]
    fn rank_one_matrix() {
        // vv^T with v=[1,1,1]/sqrt(3) has eigenvalues {1, 0, 0}.
        let a = Matrix::from_fn(3, 3, |_, _| 1.0 / 3.0);
        let eig = symmetric_eigen(&a);
        assert!(eig.eigenvalues[0].abs() < 1e-12);
        assert!(eig.eigenvalues[1].abs() < 1e-12);
        assert!((eig.eigenvalues[2] - 1.0).abs() < 1e-12);
        check_decomposition(&a, &eig, 1e-10);
    }

    #[test]
    fn singleton_and_empty() {
        let eig = symmetric_eigen(&Matrix::from_rows(&[&[4.0]]));
        assert_eq!(eig.eigenvalues, vec![4.0]);
        let eig = symmetric_eigen(&Matrix::zeros(0, 0));
        assert!(eig.eigenvalues.is_empty());
    }
}
