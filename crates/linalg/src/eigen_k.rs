//! K-targeted dense symmetric eigensolver.
//!
//! The spectral embedding (paper Eq. 2) needs only the top `k ≈ 5`
//! eigenvectors of each bucket Laplacian, but the full dense solver
//! pays `O(n³)` to rotate an `n×n` transform through QL. This module
//! assembles the cheap route:
//!
//! 1. Householder tridiagonalization *without* `Q` accumulation
//!    ([`crate::tridiagonalize_factored`]) — `O(n³)/3` once,
//! 2. QL for eigenvalues only ([`tridiagonal_eigenvalues`], EISPACK
//!    `tql1`) — `O(n²)`,
//! 3. inverse iteration on the tridiagonal for the `k` wanted vectors
//!    ([`tridiagonal_eigenvectors`], EISPACK `tinvit` lineage) —
//!    `O(nk)` per sweep,
//! 4. a blocked compact-WY back-transform of those `k` vectors through
//!    the `gemm` panel kernel — `O(n²k)`.
//!
//! Everything is deterministic: starting vectors come from a counter
//! seeded xorshift, and no step depends on thread count. The reflector
//! applications and the blocked back-transform run through
//! `vector::{dot, axpy}` and the `gemm` panel kernels, so this solver
//! dispatches to the process kernel backend (see [`crate::simd`]) like
//! the rest of the hot path.

use crate::tridiag::{tridiagonalize_factored, FactoredTridiagonal};
use crate::{vector, Matrix};

/// QL sweeps before declaring failure (same budget as `eigen.rs`).
const MAX_QL_ITERATIONS: usize = 50;

/// Inverse-iteration solves per vector; with a random start two solves
/// already give `O(ε)` residuals, the third buys margin for perturbed
/// shifts inside degenerate clusters.
const INVERSE_ITERATIONS: usize = 3;

/// Restart attempts when a starting vector (after orthogonalization
/// against its cluster) collapses to numerical zero.
const MAX_STARTS: usize = 4;

/// The `k` largest eigenpairs of a dense symmetric matrix.
#[derive(Clone, Debug)]
pub struct TopEigen {
    /// Eigenvalues in descending order.
    pub eigenvalues: Vec<f64>,
    /// `n×k` matrix whose column `j` is the unit eigenvector for
    /// `eigenvalues[j]`.
    pub eigenvectors: Matrix,
}

/// All eigenvalues of a symmetric tridiagonal matrix, ascending
/// (EISPACK `tql1`: implicit-shift QL without eigenvector rotations).
///
/// `off_diagonal[i]` couples rows `i-1` and `i`; `off_diagonal[0]` is
/// ignored, matching [`crate::Tridiagonal`].
///
/// # Panics
/// Panics if the two slices differ in length or QL fails to converge.
pub fn tridiagonal_eigenvalues(diagonal: &[f64], off_diagonal: &[f64]) -> Vec<f64> {
    let n = diagonal.len();
    assert_eq!(
        n,
        off_diagonal.len(),
        "tridiagonal_eigenvalues: shape mismatch"
    );
    let mut d = diagonal.to_vec();
    if n <= 1 {
        return d;
    }
    // Shift the couplings so e[i] joins i and i+1.
    let mut e: Vec<f64> = (0..n)
        .map(|i| if i + 1 < n { off_diagonal[i + 1] } else { 0.0 })
        .collect();

    for l in 0..n {
        let mut iterations = 0;
        loop {
            // Find the first negligible off-diagonal at or after l.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iterations += 1;
            assert!(
                iterations <= MAX_QL_ITERATIONS,
                "tridiagonal_eigenvalues: QL failed to converge"
            );

            // Wilkinson shift from the leading 2×2.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            let denom = g + if g >= 0.0 { r.abs() } else { -r.abs() };
            g = d[m] - d[l] + e[l] / denom;
            let (mut s, mut c) = (1.0, 1.0);
            let mut p = 0.0;
            let mut underflow = false;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    // Recover from underflow by deflating here.
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                f = (d[i] - g) * s + 2.0 * c * b;
                p = s * f;
                d[i + 1] = g + p;
                g = c * f - b;
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    d.sort_by(|a, b| a.partial_cmp(b).expect("eigenvalue comparison failed"));
    d
}

/// Deterministic starting vector for inverse iteration: xorshift64*
/// driven by (vector index, attempt), mapped into `[-0.5, 0.5)`.
fn start_vector(n: usize, index: usize, attempt: usize, x: &mut [f64]) {
    let mut state = 0x9E37_79B9_7F4A_7C15u64
        ^ ((index as u64) << 32)
        ^ (attempt as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03);
    for xi in x.iter_mut().take(n) {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let mantissa = (state >> 11) as f64 / (1u64 << 53) as f64;
        *xi = mantissa - 0.5;
    }
}

/// LU factorization of `T − λI` with partial pivoting, specialised to
/// the symmetric tridiagonal case: row swaps spill at most two
/// superdiagonals, so the factors fit in five length-`n` arrays.
struct TridiagLu {
    /// Diagonal of `U`.
    u0: Vec<f64>,
    /// First superdiagonal of `U`.
    u1: Vec<f64>,
    /// Second superdiagonal of `U` (nonzero only after a row swap).
    u2: Vec<f64>,
    /// Elimination multipliers.
    mult: Vec<f64>,
    /// Whether step `i` swapped rows `i` and `i+1`.
    swapped: Vec<bool>,
}

impl TridiagLu {
    /// Factor `T − λI`; `sub[i]` couples rows `i` and `i+1`. Exactly
    /// zero pivots are replaced by `pivot_floor` (EISPACK `tinvit`'s
    /// `eps3`) so the singular shift still yields a usable solve.
    fn factor(diagonal: &[f64], sub: &[f64], lambda: f64, pivot_floor: f64) -> Self {
        let n = diagonal.len();
        let mut u0: Vec<f64> = diagonal.iter().map(|&di| di - lambda).collect();
        let mut u1 = vec![0.0; n];
        let mut u2 = vec![0.0; n];
        let mut mult = vec![0.0; n];
        let mut swapped = vec![false; n];
        if n > 1 {
            u1[..n - 1].copy_from_slice(sub);
        }
        for i in 0..n.saturating_sub(1) {
            let low = sub[i];
            if u0[i].abs() >= low.abs() {
                if u0[i] == 0.0 {
                    u0[i] = pivot_floor;
                }
                let m = low / u0[i];
                mult[i] = m;
                u0[i + 1] -= m * u1[i];
                if i + 2 < n {
                    u1[i + 1] -= m * u2[i];
                }
            } else {
                // |low| > |u0[i]| ≥ 0, so the pivot `low` is nonzero.
                swapped[i] = true;
                let m = u0[i] / low;
                mult[i] = m;
                let old_u1 = u1[i];
                u0[i] = low;
                u1[i] = u0[i + 1];
                u2[i] = if i + 2 < n { u1[i + 1] } else { 0.0 };
                u0[i + 1] = old_u1 - m * u1[i];
                if i + 2 < n {
                    u1[i + 1] = -m * u2[i];
                }
            }
        }
        if let Some(last) = u0.last_mut() {
            if *last == 0.0 {
                *last = pivot_floor;
            }
        }
        Self {
            u0,
            u1,
            u2,
            mult,
            swapped,
        }
    }

    /// Solve `(T − λI) x = b` in place.
    fn solve(&self, b: &mut [f64]) {
        let n = b.len();
        for i in 0..n.saturating_sub(1) {
            if self.swapped[i] {
                b.swap(i, i + 1);
            }
            b[i + 1] -= self.mult[i] * b[i];
        }
        b[n - 1] /= self.u0[n - 1];
        if n >= 2 {
            b[n - 2] = (b[n - 2] - self.u1[n - 2] * b[n - 1]) / self.u0[n - 2];
        }
        for i in (0..n.saturating_sub(2)).rev() {
            b[i] = (b[i] - self.u1[i] * b[i + 1] - self.u2[i] * b[i + 2]) / self.u0[i];
        }
    }
}

/// Unit eigenvectors of a symmetric tridiagonal matrix for the given
/// eigenvalues, by inverse iteration with cluster reorthogonalization
/// (EISPACK `tinvit` / LAPACK `dstein` lineage).
///
/// `targets` must be sorted ascending (as produced by
/// [`tridiagonal_eigenvalues`]). Returns a flat `targets.len()×n`
/// row-major buffer; row `r` is the eigenvector for `targets[r]`.
/// Eigenvalues closer than `10⁻³‖T‖` are treated as one cluster: their
/// shifts are perturbed apart and their vectors orthogonalized, which
/// is what makes degenerate spectra safe.
pub fn tridiagonal_eigenvectors(
    diagonal: &[f64],
    off_diagonal: &[f64],
    targets: &[f64],
) -> Vec<f64> {
    let n = diagonal.len();
    assert_eq!(
        n,
        off_diagonal.len(),
        "tridiagonal_eigenvectors: shape mismatch"
    );
    let k = targets.len();
    if n == 0 || k == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![1.0; k];
    }
    for pair in targets.windows(2) {
        assert!(
            pair[0] <= pair[1],
            "tridiagonal_eigenvectors: targets must ascend"
        );
    }
    let sub: Vec<f64> = (0..n - 1).map(|i| off_diagonal[i + 1]).collect();

    // ‖T‖∞ bound, used to scale every tolerance in the routine.
    let mut anorm = 0.0f64;
    for i in 0..n {
        let mut row = diagonal[i].abs();
        if i > 0 {
            row += sub[i - 1].abs();
        }
        if i + 1 < n {
            row += sub[i].abs();
        }
        anorm = anorm.max(row);
    }
    let anorm = anorm.max(f64::MIN_POSITIVE);
    let pivot_floor = (f64::EPSILON * anorm).max(f64::MIN_POSITIVE);
    // Shift separation for (near-)identical targets, and the gap under
    // which neighbours count as one cluster for orthogonalization.
    let shift_sep = 10.0 * pivot_floor;
    let cluster_gap = 1e-3 * anorm;

    let mut out = vec![0.0; k * n];
    let mut shifts = vec![0.0; k];
    let mut group_start = 0;
    for r in 0..k {
        let mut lambda = targets[r];
        if r > 0 {
            if targets[r] - targets[r - 1] >= cluster_gap {
                group_start = r;
            }
            if lambda < shifts[r - 1] + shift_sep {
                lambda = shifts[r - 1] + shift_sep;
            }
        }
        shifts[r] = lambda;
        let lu = TridiagLu::factor(diagonal, &sub, lambda, pivot_floor);

        let (done, row) = out.split_at_mut(r * n);
        let x = &mut row[..n];
        let mut converged = false;
        'attempts: for attempt in 0..MAX_STARTS {
            start_vector(n, r, attempt, x);
            vector::normalize(x);
            for _ in 0..INVERSE_ITERATIONS {
                lu.solve(x);
                // Rescale by the largest entry first: a near-singular
                // shift amplifies by ~1/pivot_floor and ‖x‖² would
                // overflow before normalize ever ran.
                let amax = x.iter().fold(0.0f64, |m, v| m.max(v.abs()));
                if amax == 0.0 || !amax.is_finite() {
                    continue 'attempts;
                }
                vector::scale(1.0 / amax, x);
                // Project out the cluster's earlier vectors so repeated
                // eigenvalues get orthogonal representatives.
                for prev in done[group_start * n..].chunks_exact(n) {
                    let proj = vector::dot(prev, x);
                    vector::axpy(-proj, prev, x);
                }
                if vector::normalize(x) == 0.0 {
                    continue 'attempts;
                }
            }
            converged = true;
            break;
        }
        assert!(
            converged,
            "tridiagonal_eigenvectors: inverse iteration found no independent direction"
        );
    }
    out
}

/// The `k` largest eigenpairs of a dense symmetric matrix via the
/// k-targeted path (factored Householder, `tql1`, inverse iteration,
/// blocked back-transform); `O(n³)/3 + O(n²k)` instead of the
/// full solver's `O(n³)` with a much larger constant.
///
/// Agrees with [`crate::symmetric_eigen`]`.top_k(k)` up to column sign
/// for well-separated eigenvalues; inside a degenerate cluster both
/// return an (equally valid) orthonormal basis of the eigenspace.
///
/// # Panics
/// Panics if `a` is not square. Symmetry is the caller's
/// responsibility; only the lower triangle is read.
pub fn symmetric_eigen_topk(a: &Matrix, k: usize) -> TopEigen {
    assert!(a.is_square(), "symmetric_eigen_topk: matrix must be square");
    let n = a.nrows();
    let k = k.min(n);
    if k == 0 {
        return TopEigen {
            eigenvalues: Vec::new(),
            eigenvectors: Matrix::zeros(n, 0),
        };
    }
    let factored = tridiagonalize_factored(a);
    let (vt, targets) = top_vectors_of(&factored, k);
    let mut vectors = Matrix::zeros(n, k);
    let flat = vectors.as_mut_slice();
    for j in 0..k {
        // Column j ↔ descending eigenvalue j ↔ ascending target k-1-j.
        let row = &vt[(k - 1 - j) * n..(k - j) * n];
        for i in 0..n {
            flat[i * k + j] = row[i];
        }
    }
    TopEigen {
        eigenvalues: targets.iter().rev().copied().collect(),
        eigenvectors: vectors,
    }
}

/// Shared tail of the k-targeted path: eigenvalues, inverse iteration,
/// back-transform. Returns the `k×n` row buffer (rows ascending by
/// eigenvalue) plus the ascending target eigenvalues.
fn top_vectors_of(factored: &FactoredTridiagonal, k: usize) -> (Vec<f64>, Vec<f64>) {
    let n = factored.order();
    let all = tridiagonal_eigenvalues(&factored.diagonal, &factored.off_diagonal);
    let targets = all[n - k..].to_vec();
    let mut vt = tridiagonal_eigenvectors(&factored.diagonal, &factored.off_diagonal, &targets);
    factored.back_transform_rows(&mut vt, k);
    for row in vt.chunks_exact_mut(n) {
        vector::normalize(row);
    }
    (vt, targets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{symmetric_eigen, tridiagonalize};

    fn sym_from_seed(n: usize, seed: u64) -> Matrix {
        let mut state = seed.max(1);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = next();
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        a
    }

    #[test]
    fn eigenvalues_match_full_ql() {
        for (n, seed) in [(1usize, 7u64), (2, 11), (5, 13), (16, 17), (33, 19)] {
            let a = sym_from_seed(n, seed);
            let full = symmetric_eigen(&a);
            let mut reference = full.eigenvalues.clone();
            reference.sort_by(|x, y| x.partial_cmp(y).unwrap());
            let f = tridiagonalize_factored(&a);
            let vals = tridiagonal_eigenvalues(&f.diagonal, &f.off_diagonal);
            for (got, want) in vals.iter().zip(&reference) {
                assert!(
                    (got - want).abs() < 1e-9 * (1.0 + want.abs()),
                    "n={n}: eigenvalue mismatch {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn factored_reduction_matches_accumulating_reduction() {
        for (n, seed) in [(2usize, 3u64), (4, 5), (9, 23), (24, 29)] {
            let a = sym_from_seed(n, seed);
            let full = tridiagonalize(&a);
            let fact = tridiagonalize_factored(&a);
            for i in 0..n {
                assert!(
                    (full.diagonal[i] - fact.diagonal[i]).abs() < 1e-10,
                    "n={n}: diagonal mismatch at {i}"
                );
                assert!(
                    (full.off_diagonal[i] - fact.off_diagonal[i]).abs() < 1e-10,
                    "n={n}: off-diagonal mismatch at {i}"
                );
            }
        }
    }

    #[test]
    fn topk_matches_full_solver_residuals() {
        for (n, k, seed) in [
            (3usize, 2usize, 41u64),
            (8, 3, 43),
            (20, 5, 47),
            (40, 6, 53),
        ] {
            let a = sym_from_seed(n, seed);
            let top = symmetric_eigen_topk(&a, k);
            assert_eq!(top.eigenvalues.len(), k);
            assert_eq!(top.eigenvectors.nrows(), n);
            assert_eq!(top.eigenvectors.ncols(), k);
            for j in 0..k {
                let v = top.eigenvectors.col(j);
                let lambda = top.eigenvalues[j];
                let mut av = vec![0.0; n];
                a.matvec_into(&v, &mut av);
                for i in 0..n {
                    assert!(
                        (av[i] - lambda * v[i]).abs() < 1e-8,
                        "n={n} k={k}: residual too large for pair {j}"
                    );
                }
            }
            // Orthonormality of the returned block.
            for j in 0..k {
                for j2 in 0..=j {
                    let got = vector::dot(&top.eigenvectors.col(j), &top.eigenvectors.col(j2));
                    let want = if j == j2 { 1.0 } else { 0.0 };
                    assert!(
                        (got - want).abs() < 1e-8,
                        "n={n} k={k}: block not orthonormal at ({j},{j2})"
                    );
                }
            }
            // Eigenvalues agree with the full solver's descending top-k.
            let full = symmetric_eigen(&a);
            let (full_vals, _) = full.top_k(k);
            for (j, (got, want)) in top.eigenvalues.iter().zip(&full_vals).enumerate() {
                assert!(
                    (got - want).abs() < 1e-9,
                    "n={n} k={k}: eigenvalue {j} disagrees with full solver"
                );
            }
        }
    }

    #[test]
    fn degenerate_spectrum_yields_orthonormal_eigenbasis() {
        // Block-constant similarity has a multiple top eigenvalue; the
        // k-targeted path must still return an orthonormal basis whose
        // residuals vanish.
        let n = 12;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                if (i < n / 2) == (j < n / 2) {
                    a[(i, j)] = 1.0;
                }
            }
        }
        let top = symmetric_eigen_topk(&a, 3);
        assert!((top.eigenvalues[0] - 6.0).abs() < 1e-9);
        assert!((top.eigenvalues[1] - 6.0).abs() < 1e-9);
        assert!(top.eigenvalues[2].abs() < 1e-9);
        for j in 0..2 {
            let v = top.eigenvectors.col(j);
            let mut av = vec![0.0; n];
            a.matvec_into(&v, &mut av);
            for i in 0..n {
                assert!((av[i] - 6.0 * v[i]).abs() < 1e-8, "residual at ({i},{j})");
            }
        }
        let cross = vector::dot(&top.eigenvectors.col(0), &top.eigenvectors.col(1));
        assert!(
            cross.abs() < 1e-8,
            "degenerate pair not orthogonal: {cross}"
        );
    }

    #[test]
    fn identity_and_zero_matrices() {
        let top = symmetric_eigen_topk(&Matrix::identity(6), 2);
        assert!((top.eigenvalues[0] - 1.0).abs() < 1e-12);
        assert!((top.eigenvalues[1] - 1.0).abs() < 1e-12);
        let top = symmetric_eigen_topk(&Matrix::zeros(5, 5), 3);
        for v in &top.eigenvalues {
            assert!(v.abs() < 1e-12);
        }
        let k0 = symmetric_eigen_topk(&Matrix::identity(4), 0);
        assert!(k0.eigenvalues.is_empty());
        assert_eq!(k0.eigenvectors.ncols(), 0);
    }
}
