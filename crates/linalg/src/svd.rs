//! Singular values via the eigendecomposition of `AᵀA`.
//!
//! The paper's Fnorm metric rests on the SVD identity
//! `‖A‖²_F = Σ σₘ²` (Eqs. 23–24, unitary invariance); this module makes
//! that identity checkable and provides singular values for rank/energy
//! analyses of Gram matrices.

use crate::dense::Matrix;
use crate::eigen::symmetric_eigen;

/// Singular values of `a`, descending. Computed as the square roots of
/// the eigenvalues of `AᵀA` (clamped at zero), which is exact for the
/// moderate sizes used here and needs no bidiagonalization machinery.
pub fn singular_values(a: &Matrix) -> Vec<f64> {
    let ata = a.transpose().matmul(a);
    let eig = symmetric_eigen(&ata);
    let mut vals: Vec<f64> = eig
        .eigenvalues
        .iter()
        .rev()
        .map(|&l| l.max(0.0).sqrt())
        .collect();
    // Guard against tiny negative rounding turned 0: ensure descending.
    vals.sort_by(|x, y| y.partial_cmp(x).expect("NaN singular value"));
    vals
}

/// Numerical rank: singular values above `tol · σ₁`.
pub fn numerical_rank(a: &Matrix, tol: f64) -> usize {
    let s = singular_values(a);
    let cutoff = s.first().copied().unwrap_or(0.0) * tol;
    s.iter().filter(|&&v| v > cutoff && v > 0.0).count()
}

/// Fraction of Frobenius energy captured by the top `k` singular values
/// (`Σ_{m≤k} σₘ² / Σ σₘ²`) — the "rapidly decaying eigen-spectrum"
/// observation that motivates both Nyström and DASC.
pub fn energy_captured(a: &Matrix, k: usize) -> f64 {
    let s = singular_values(a);
    let total: f64 = s.iter().map(|v| v * v).sum();
    if total == 0.0 {
        return 1.0;
    }
    s.iter().take(k).map(|v| v * v).sum::<f64>() / total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_singular_values_are_abs_entries() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, -4.0]]);
        let s = singular_values(&a);
        assert!((s[0] - 4.0).abs() < 1e-10);
        assert!((s[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn eq24_frobenius_identity() {
        // ‖A‖²_F = Σ σ² (the paper's unitary-invariance argument).
        let a = Matrix::from_rows(&[&[1.0, 2.0, 0.5], &[-1.0, 0.3, 2.2], &[0.7, 0.7, -0.9]]);
        let fro2 = a.frobenius_norm().powi(2);
        let sum2: f64 = singular_values(&a).iter().map(|v| v * v).sum();
        assert!((fro2 - sum2).abs() < 1e-9, "{fro2} vs {sum2}");
    }

    #[test]
    fn rank_detects_deficiency() {
        // Second row is 2× the first: rank 1.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(numerical_rank(&a, 1e-9), 1);
        assert_eq!(numerical_rank(&Matrix::identity(3), 1e-9), 3);
        assert_eq!(numerical_rank(&Matrix::zeros(2, 2), 1e-9), 0);
    }

    #[test]
    fn rbf_gram_energy_concentrates() {
        // The motivating observation: an RBF Gram matrix's spectrum
        // decays fast, so few components carry most of the energy.
        let pts: Vec<Vec<f64>> = (0..24)
            .map(|i| vec![(i % 6) as f64 / 6.0, (i / 6) as f64 / 4.0])
            .collect();
        let g = Matrix::from_fn(24, 24, |i, j| {
            let d2: f64 = pts[i]
                .iter()
                .zip(&pts[j])
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            (-d2 / 0.5).exp()
        });
        let e4 = energy_captured(&g, 4);
        assert!(e4 > 0.9, "top-4 energy only {e4}");
        assert!((energy_captured(&g, 24) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tall_matrix_supported() {
        let a = Matrix::from_rows(&[&[1.0], &[2.0], &[2.0]]);
        let s = singular_values(&a);
        assert_eq!(s.len(), 1);
        assert!((s[0] - 3.0).abs() < 1e-10);
    }
}
