//! Row-major dense `f64` matrix.
//!
//! Sized for the per-bucket similarity matrices DASC produces: buckets are
//! small (hundreds to a few thousand points), so a contiguous row-major
//! layout with rayon-parallel row operations is the right tradeoff.

use std::fmt;
use std::ops::{Index, IndexMut};

use rayon::prelude::*;

use crate::operator::MatVec;
use crate::vector;

/// Rows per matvec panel: small enough that panels load-balance across
/// the pool, large enough that the per-task scheduling cost vanishes
/// against the row dots.
const MATVEC_PANEL_ROWS: usize = 64;

/// Dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "from_vec: shape mismatch");
        Self { rows, cols, data }
    }

    /// Build from nested row slices (convenient in tests).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows: no rows");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "from_rows: ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Build an `n×n` matrix from a function of `(i, j)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` out into a fresh vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Flat row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Flat row-major data, mutable. Pairs with `par_chunks_mut(ncols)`
    /// to fill rows in parallel without an intermediate per-row buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the flat row-major data vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Copy the upper triangle onto the lower one in place, making the
    /// matrix symmetric. Lets builders fill only `j >= i` and finish
    /// with one linear pass instead of double-writing every entry.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn mirror_upper(&mut self) {
        assert!(self.is_square(), "mirror_upper: matrix not square");
        for i in 1..self.rows {
            for j in 0..i {
                self.data[i * self.cols + j] = self.data[j * self.cols + i];
            }
        }
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix–matrix product, row-parallel via rayon.
    ///
    /// # Panics
    /// Panics if inner dimensions do not agree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul: inner dimension mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        out.data
            .par_chunks_mut(n)
            .enumerate()
            .for_each(|(i, out_row)| {
                let a_row = &self.data[i * k..(i + 1) * k];
                for (l, &a) in a_row.iter().enumerate() {
                    if a != 0.0 {
                        let b_row = &other.data[l * n..(l + 1) * n];
                        vector::axpy(a, b_row, out_row);
                    }
                }
            });
        out
    }

    /// Matrix–vector product `y = A x`, row-panel parallel.
    ///
    /// Panels of [`MATVEC_PANEL_ROWS`] rows go through the same dot
    /// kernel as the GEMM micro-kernel layer (`par_chunks_mut` over
    /// `y`), so the dense matvecs inside Lanczos run at tile speed
    /// instead of one serial accumulator chain per row — and inherit the
    /// process kernel backend (see [`crate::simd`]): AVX2+FMA or NEON
    /// where available, the unrolled scalar kernel under
    /// `DASC_KERNEL=scalar`. Every output entry is produced by the same
    /// instruction sequence regardless of panel position or thread
    /// count, so the result is bit-identical across pool sizes within a
    /// backend.
    ///
    /// # Panics
    /// Panics if `x.len() != ncols`.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec: dimension mismatch");
        assert_eq!(y.len(), self.rows, "matvec: output dimension mismatch");
        let dim = self.cols;
        if dim == 0 {
            y.fill(0.0);
            return;
        }
        y.par_chunks_mut(MATVEC_PANEL_ROWS)
            .enumerate()
            .for_each(|(panel, out)| {
                let r0 = panel * MATVEC_PANEL_ROWS;
                let rows = &self.data[r0 * dim..(r0 + out.len()) * dim];
                crate::gemm::abt_into(rows, out.len(), x, 1, dim, out, 1);
            });
    }

    /// Frobenius norm `sqrt(Σ aᵢⱼ²)` (Eq. 22 of the paper).
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Largest absolute entry-wise difference to another matrix.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff: shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Check symmetry to within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Scale every entry in place.
    pub fn scale_inplace(&mut self, alpha: f64) {
        vector::scale(alpha, &mut self.data);
    }

    /// Entry-wise sum of another matrix into this one.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign: shape mismatch");
        vector::axpy(1.0, &other.data, &mut self.data);
    }

    /// Extract the square principal submatrix at `indices × indices`.
    pub fn principal_submatrix(&self, indices: &[usize]) -> Matrix {
        let k = indices.len();
        let mut s = Matrix::zeros(k, k);
        for (a, &i) in indices.iter().enumerate() {
            for (b, &j) in indices.iter().enumerate() {
                s[(a, b)] = self[(i, j)];
            }
        }
        s
    }

    /// Row sums (the degree vector of a similarity matrix).
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows).map(|i| self.row(i).iter().sum()).collect()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:10.4} ", self[(i, j)])?;
            }
            writeln!(f, "{}]", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl MatVec for Matrix {
    fn dim(&self) -> usize {
        assert!(self.is_square(), "MatVec requires a square matrix");
        self.rows
    }

    fn matvec(&self, x: &[f64], y: &mut [f64]) {
        self.matvec_into(x, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i.frobenius_norm(), 3f64.sqrt());
    }

    #[test]
    fn from_rows_and_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.col(1), vec![2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_ragged_panics() {
        Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.matmul(&Matrix::identity(2)), a);
        assert_eq!(Matrix::identity(2).matmul(&a), a);
    }

    #[test]
    fn matvec_basic() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut y = vec![0.0; 2];
        a.matvec_into(&[1.0, 1.0], &mut y);
        assert_eq!(y, vec![3.0, 7.0]);
    }

    #[test]
    fn symmetry_detection() {
        let s = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert!(s.is_symmetric(0.0));
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 1.0]]);
        assert!(!a.is_symmetric(1e-12));
        assert!(!Matrix::zeros(2, 3).is_symmetric(0.0));
    }

    #[test]
    fn principal_submatrix_extracts() {
        let m = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let s = m.principal_submatrix(&[0, 2]);
        assert_eq!(s, Matrix::from_rows(&[&[0.0, 2.0], &[8.0, 10.0]]));
    }

    #[test]
    fn row_sums_degree_vector() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.row_sums(), vec![3.0, 7.0]);
    }

    #[test]
    fn frobenius_norm_known_value() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert_eq!(m.frobenius_norm(), 5.0);
    }
}
