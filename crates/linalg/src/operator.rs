//! Abstract linear operator used by the iterative eigensolvers.

/// A square linear operator that can apply itself to a vector.
///
/// Both [`crate::Matrix`] and [`crate::CsrMatrix`] implement this, so the
/// Lanczos solver works identically on dense per-bucket Laplacians and the
/// sparse t-NN Laplacians of the PSC baseline.
pub trait MatVec: Sync {
    /// Operator dimension `n` (the operator is `n×n`).
    fn dim(&self) -> usize;

    /// Compute `y = A x`.
    ///
    /// Implementations may assume `x.len() == y.len() == self.dim()`.
    fn matvec(&self, x: &[f64], y: &mut [f64]);

    /// Convenience allocation wrapper around [`MatVec::matvec`].
    fn apply(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.dim()];
        self.matvec(x, &mut y);
        y
    }
}

/// A diagonally-shifted operator `A + shift·I`, useful for mapping the
/// smallest eigenvalues of a Laplacian onto the largest of a shifted one.
pub struct Shifted<'a, A: MatVec> {
    inner: &'a A,
    shift: f64,
}

impl<'a, A: MatVec> Shifted<'a, A> {
    /// Wrap `inner` as `inner + shift·I`.
    pub fn new(inner: &'a A, shift: f64) -> Self {
        Self { inner, shift }
    }
}

impl<A: MatVec> MatVec for Shifted<'_, A> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn matvec(&self, x: &[f64], y: &mut [f64]) {
        self.inner.matvec(x, y);
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += self.shift * xi;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    #[test]
    fn shifted_adds_diagonal() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        let s = Shifted::new(&a, 3.0);
        let y = s.apply(&[1.0, 0.0]);
        assert_eq!(y, vec![4.0, 2.0]);
    }

    #[test]
    fn apply_matches_matvec() {
        let a = Matrix::identity(3);
        assert_eq!(a.apply(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }
}
