//! Flat row-major point storage for hot loops.
//!
//! `Vec<Vec<f64>>` scatters points across the heap — every kernel
//! evaluation chases a pointer per operand and the prefetcher gets no
//! help. [`FlatPoints`] packs the same points into one contiguous
//! buffer with a fixed stride, so a Gram row walks memory linearly and
//! `row(i)` is a bounds-checked slice into the buffer, not a separate
//! allocation.

/// Points stored contiguously, row-major, with a fixed dimension.
#[derive(Clone, Debug, PartialEq)]
pub struct FlatPoints {
    data: Vec<f64>,
    dim: usize,
    len: usize,
}

impl FlatPoints {
    /// Pack nested rows into one buffer.
    ///
    /// # Panics
    /// Panics if the rows are ragged.
    pub fn from_rows(points: &[Vec<f64>]) -> Self {
        let len = points.len();
        let dim = points.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(len * dim);
        for p in points {
            assert_eq!(p.len(), dim, "FlatPoints: ragged rows");
            data.extend_from_slice(p);
        }
        Self { data, dim, len }
    }

    /// Gather `points[indices[0]], points[indices[1]], ...` into one
    /// buffer — the bucket-extraction pattern, without the intermediate
    /// `Vec<Vec<f64>>` of clones.
    ///
    /// # Panics
    /// Panics on an out-of-range index or ragged source rows.
    pub fn gather(points: &[Vec<f64>], indices: &[usize]) -> Self {
        let len = indices.len();
        let dim = indices.first().map_or(0, |&i| points[i].len());
        let mut data = Vec::with_capacity(len * dim);
        for &i in indices {
            assert_eq!(points[i].len(), dim, "FlatPoints: ragged rows");
            data.extend_from_slice(&points[i]);
        }
        Self { data, dim, len }
    }

    /// Build from an already-flat buffer.
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of `dim` (for `dim > 0`),
    /// or if `dim == 0` with a non-empty buffer.
    pub fn from_flat(data: Vec<f64>, dim: usize) -> Self {
        let len = if dim == 0 {
            assert!(data.is_empty(), "FlatPoints: dim 0 with data");
            0
        } else {
            assert_eq!(
                data.len() % dim,
                0,
                "FlatPoints: buffer not a multiple of dim"
            );
            data.len() / dim
        };
        Self { data, dim, len }
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether there are no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimension (stride) of each point.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Point `i` as a slice of the shared buffer.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// The whole row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Rows `r0..r1` as one contiguous slice — the panel access pattern
    /// of the tiled micro-kernels in [`crate::gemm`].
    ///
    /// # Panics
    /// Panics if the range is out of bounds or reversed.
    #[inline]
    pub fn rows(&self, r0: usize, r1: usize) -> &[f64] {
        assert!(
            r0 <= r1 && r1 <= self.len,
            "FlatPoints: row range out of bounds"
        );
        &self.data[r0 * self.dim..r1 * self.dim]
    }

    /// Iterate over the points in order.
    pub fn iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.dim.max(1)).take(self.len)
    }

    /// Copy back out to nested rows (tests / interop).
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        self.iter().map(<[f64]>::to_vec).collect()
    }

    /// Borrow the whole buffer as a [`FlatPointsView`].
    #[inline]
    pub fn view(&self) -> FlatPointsView<'_> {
        FlatPointsView::new(&self.data, self.dim, self.len)
    }
}

/// Borrowed analog of [`FlatPoints`]: a row-major `&[f64]` someone else
/// owns (an mmap'd shard, a `FlatPoints`, a scratch buffer), exposed
/// with the same accessors. This is how out-of-core shards enter the
/// pipeline without copying into an owned `Vec`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlatPointsView<'a> {
    data: &'a [f64],
    dim: usize,
    len: usize,
}

impl<'a> FlatPointsView<'a> {
    /// Wrap a borrowed row-major buffer.
    ///
    /// # Panics
    /// Panics unless `data.len() == len * dim`.
    pub fn new(data: &'a [f64], dim: usize, len: usize) -> Self {
        assert_eq!(data.len(), len * dim, "FlatPointsView: buffer shape");
        Self { data, dim, len }
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether there are no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimension (stride) of each point.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Point `i` as a slice of the borrowed buffer.
    #[inline]
    pub fn row(&self, i: usize) -> &'a [f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// The whole row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &'a [f64] {
        self.data
    }

    /// Iterate over the points in order.
    pub fn iter(&self) -> impl Iterator<Item = &'a [f64]> {
        self.data.chunks_exact(self.dim.max(1)).take(self.len)
    }

    /// Copy into an owned [`FlatPoints`].
    pub fn to_owned_points(&self) -> FlatPoints {
        FlatPoints::from_flat(self.data.to_vec(), self.dim)
    }
}

/// Read-only access to a set of fixed-dimension points, however they
/// are stored. Algorithms generic over this trait run identically on
/// nested `Vec<Vec<f64>>` rows, packed [`FlatPoints`], borrowed
/// [`FlatPointsView`]s, and out-of-core shard readers — the iteration
/// order is the caller's, so a generic implementation is bit-identical
/// across storage layouts.
pub trait PointsView {
    /// Number of points.
    fn len(&self) -> usize;
    /// Dimension of each point.
    fn dim(&self) -> usize;
    /// Point `i` as a slice.
    fn row(&self, i: usize) -> &[f64];
    /// Whether there are no points.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl PointsView for FlatPoints {
    #[inline]
    fn len(&self) -> usize {
        FlatPoints::len(self)
    }
    #[inline]
    fn dim(&self) -> usize {
        FlatPoints::dim(self)
    }
    #[inline]
    fn row(&self, i: usize) -> &[f64] {
        FlatPoints::row(self, i)
    }
}

impl PointsView for FlatPointsView<'_> {
    #[inline]
    fn len(&self) -> usize {
        FlatPointsView::len(self)
    }
    #[inline]
    fn dim(&self) -> usize {
        FlatPointsView::dim(self)
    }
    #[inline]
    fn row(&self, i: usize) -> &[f64] {
        FlatPointsView::row(self, i)
    }
}

impl PointsView for [Vec<f64>] {
    #[inline]
    fn len(&self) -> usize {
        <[Vec<f64>]>::len(self)
    }
    #[inline]
    fn dim(&self) -> usize {
        self.first().map_or(0, Vec::len)
    }
    #[inline]
    fn row(&self, i: usize) -> &[f64] {
        &self[i]
    }
}

impl<P: PointsView + ?Sized> PointsView for &P {
    #[inline]
    fn len(&self) -> usize {
        (**self).len()
    }
    #[inline]
    fn dim(&self) -> usize {
        (**self).dim()
    }
    #[inline]
    fn row(&self, i: usize) -> &[f64] {
        (**self).row(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_rows() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let fp = FlatPoints::from_rows(&rows);
        assert_eq!(fp.len(), 3);
        assert_eq!(fp.dim(), 2);
        assert_eq!(fp.row(1), &[3.0, 4.0]);
        assert_eq!(fp.to_rows(), rows);
    }

    #[test]
    fn gather_selects_and_orders() {
        let rows = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
        let fp = FlatPoints::gather(&rows, &[3, 1]);
        assert_eq!(fp.len(), 2);
        assert_eq!(fp.row(0), &[3.0]);
        assert_eq!(fp.row(1), &[1.0]);
    }

    #[test]
    fn empty_inputs() {
        let fp = FlatPoints::from_rows(&[]);
        assert!(fp.is_empty());
        assert_eq!(fp.dim(), 0);
        assert_eq!(fp.iter().count(), 0);
        let fp = FlatPoints::gather(&[vec![1.0]], &[]);
        assert!(fp.is_empty());
    }

    #[test]
    fn from_flat_shapes() {
        let fp = FlatPoints::from_flat(vec![1.0, 2.0, 3.0, 4.0], 2);
        assert_eq!(fp.len(), 2);
        assert_eq!(fp.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        FlatPoints::from_rows(&[vec![1.0, 2.0], vec![3.0]]);
    }

    #[test]
    fn view_borrows_same_rows() {
        let fp = FlatPoints::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let v = fp.view();
        assert_eq!(v.len(), 2);
        assert_eq!(v.dim(), 2);
        assert_eq!(v.row(1), fp.row(1));
        assert_eq!(v.to_owned_points(), fp);
    }

    #[test]
    fn points_view_trait_agrees_across_layouts() {
        fn checksum<P: PointsView + ?Sized>(p: &P) -> f64 {
            let mut acc = 0.0;
            for i in 0..p.len() {
                for &v in p.row(i) {
                    acc = acc * 1.5 + v;
                }
            }
            acc
        }
        let rows = vec![vec![1.0, -2.0], vec![0.5, 8.0], vec![3.0, 4.0]];
        let flat = FlatPoints::from_rows(&rows);
        let a = checksum(rows.as_slice());
        let b = checksum(&flat);
        let c = checksum(&flat.view());
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(b.to_bits(), c.to_bits());
    }

    #[test]
    #[should_panic(expected = "buffer shape")]
    fn view_shape_mismatch_panics() {
        FlatPointsView::new(&[1.0, 2.0, 3.0], 2, 2);
    }

    #[test]
    #[should_panic(expected = "multiple of dim")]
    fn misaligned_flat_panics() {
        FlatPoints::from_flat(vec![1.0, 2.0, 3.0], 2);
    }
}
