//! Householder reduction of a real symmetric matrix to tridiagonal form.
//!
//! This is the transformation the DASC paper invokes before QR/QL
//! iteration ("we transform Lᵢ into a symmetric tridiagonal matrix Aᵢ").
//! The implementation follows the classic EISPACK `tred2` routine,
//! accumulating the orthogonal similarity transform `Q` so that
//! `A = Q · T · Qᵀ`.

use crate::vector;
use crate::Matrix;

/// Reflectors per compact-WY block in [`FactoredTridiagonal::back_transform_rows`].
const BACK_TRANSFORM_BLOCK: usize = 32;

/// A symmetric tridiagonal matrix together with the accumulated
/// orthogonal transform that produced it.
#[derive(Clone, Debug)]
pub struct Tridiagonal {
    /// Diagonal entries `d[0..n]`.
    pub diagonal: Vec<f64>,
    /// Sub/super-diagonal entries; `off_diagonal[i]` couples `i-1` and `i`
    /// (`off_diagonal[0]` is unused and kept at `0.0`, matching EISPACK).
    pub off_diagonal: Vec<f64>,
    /// Accumulated orthogonal matrix `Q` with `A = Q T Qᵀ`.
    pub q: Matrix,
}

impl Tridiagonal {
    /// Order of the matrix.
    pub fn order(&self) -> usize {
        self.diagonal.len()
    }

    /// Reconstruct the dense tridiagonal matrix `T` (for tests/debugging).
    pub fn to_dense(&self) -> Matrix {
        let n = self.order();
        let mut t = Matrix::zeros(n, n);
        for i in 0..n {
            t[(i, i)] = self.diagonal[i];
            if i > 0 {
                t[(i, i - 1)] = self.off_diagonal[i];
                t[(i - 1, i)] = self.off_diagonal[i];
            }
        }
        t
    }
}

/// Householder-tridiagonalize a symmetric matrix (EISPACK `tred2`).
///
/// # Panics
/// Panics if `a` is not square. Symmetry is the caller's responsibility;
/// only the lower triangle is read.
pub fn tridiagonalize(a: &Matrix) -> Tridiagonal {
    assert!(a.is_square(), "tridiagonalize: matrix must be square");
    let n = a.nrows();
    let mut z = a.clone();
    let mut d = vec![0.0; n];
    let mut e = vec![0.0; n];

    if n == 0 {
        return Tridiagonal {
            diagonal: d,
            off_diagonal: e,
            q: z,
        };
    }
    if n == 1 {
        d[0] = z[(0, 0)];
        z[(0, 0)] = 1.0;
        return Tridiagonal {
            diagonal: d,
            off_diagonal: e,
            q: z,
        };
    }

    // Householder reduction, working from the last row upwards.
    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        let mut scale = 0.0;
        if l > 0 {
            for k in 0..=l {
                scale += z[(i, k)].abs();
            }
            if scale == 0.0 {
                e[i] = z[(i, l)];
            } else {
                for k in 0..=l {
                    z[(i, k)] /= scale;
                    h += z[(i, k)] * z[(i, k)];
                }
                let mut f = z[(i, l)];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                z[(i, l)] = f - g;
                f = 0.0;
                for j in 0..=l {
                    z[(j, i)] = z[(i, j)] / h;
                    let mut g = 0.0;
                    for k in 0..=j {
                        g += z[(j, k)] * z[(i, k)];
                    }
                    for k in (j + 1)..=l {
                        g += z[(k, j)] * z[(i, k)];
                    }
                    e[j] = g / h;
                    f += e[j] * z[(i, j)];
                }
                let hh = f / (h + h);
                for j in 0..=l {
                    let f = z[(i, j)];
                    let g = e[j] - hh * f;
                    e[j] = g;
                    for k in 0..=j {
                        let delta = f * e[k] + g * z[(i, k)];
                        z[(j, k)] -= delta;
                    }
                }
            }
        } else {
            e[i] = z[(i, l)];
        }
        d[i] = h;
    }

    // Accumulate the transformation matrix.
    d[0] = 0.0;
    e[0] = 0.0;
    for i in 0..n {
        if d[i] != 0.0 {
            for j in 0..i {
                let mut g = 0.0;
                for k in 0..i {
                    g += z[(i, k)] * z[(k, j)];
                }
                for k in 0..i {
                    let delta = g * z[(k, i)];
                    z[(k, j)] -= delta;
                }
            }
        }
        d[i] = z[(i, i)];
        z[(i, i)] = 1.0;
        for j in 0..i {
            z[(j, i)] = 0.0;
            z[(i, j)] = 0.0;
        }
    }

    Tridiagonal {
        diagonal: d,
        off_diagonal: e,
        q: z,
    }
}

/// A symmetric tridiagonal reduction that keeps the Householder
/// reflectors in factored form instead of accumulating `Q`.
///
/// `tridiagonalize` spends two thirds of its flops building the dense
/// `n×n` transform even when the caller only ever applies it to `k ≪ n`
/// vectors. This variant stores the reflector vectors where the
/// reduction left them (in the rows of the working copy) plus the `h`
/// normalizers, and applies the transform on demand through the blocked
/// compact-WY product in [`Self::back_transform_rows`] — `O(n²k)` work
/// instead of `O(n³)`.
#[derive(Clone, Debug)]
pub struct FactoredTridiagonal {
    /// Diagonal entries `d[0..n]`.
    pub diagonal: Vec<f64>,
    /// Sub/super-diagonal entries; `off_diagonal[i]` couples `i-1` and
    /// `i` (`off_diagonal[0]` is unused and kept at `0.0`).
    pub off_diagonal: Vec<f64>,
    /// Row `i` holds the scaled Householder vector `u_i` in columns
    /// `0..i`; `P_i = I − u_i u_iᵀ / h[i]` and `Q = P_{n-1} ⋯ P_1`.
    reflectors: Vec<f64>,
    /// `h[i] = ‖u_i‖² / 2`; zero marks a skipped (identity) reflector.
    h: Vec<f64>,
    n: usize,
}

impl FactoredTridiagonal {
    /// Order of the matrix.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Apply the accumulated transform `Q` (with `A = Q T Qᵀ`) to `k`
    /// vectors stored as the rows of the `k×n` row-major buffer `vt`,
    /// in place. Rows holding eigenvectors of `T` become eigenvectors
    /// of `A`.
    ///
    /// Reflectors are applied in ascending order (EISPACK `trbak1`),
    /// blocked into compact-WY factors `I − U Tᵀ Uᵀ` so the panel dots
    /// run through the `gemm` micro-kernel instead of one scalar axpy
    /// per reflector per vector.
    pub fn back_transform_rows(&self, vt: &mut [f64], k: usize) {
        let n = self.n;
        assert_eq!(
            vt.len(),
            k * n,
            "back_transform_rows: buffer shape mismatch"
        );
        if n < 2 || k == 0 {
            return;
        }
        let nb_max = BACK_TRANSFORM_BLOCK;
        let mut upack = vec![0.0; nb_max * n];
        let mut w = vec![0.0; nb_max * nb_max];
        let mut t = vec![0.0; nb_max * nb_max];
        let mut s = vec![0.0; nb_max * k];
        let mut m = vec![0.0; nb_max * k];

        let mut i0 = 1;
        while i0 < n {
            let i1 = (i0 + nb_max).min(n);
            let nb = i1 - i0;
            // Reflector u_i has support 0..i, so the widest vector in
            // the block bounds the packed panel width.
            let len = i1 - 1;

            // Pack the block's reflectors into contiguous zero-padded
            // rows; identity reflectors (h == 0) pack as zero rows so
            // stale matrix entries cannot leak into the panel products.
            for r in 0..nb {
                let i = i0 + r;
                let row = &mut upack[r * len..(r + 1) * len];
                if self.h[i] != 0.0 {
                    row[..i].copy_from_slice(&self.reflectors[i * n..i * n + i]);
                    row[i..].fill(0.0);
                } else {
                    row.fill(0.0);
                }
            }

            // W = U Uᵀ: the block's reflector Gram matrix, one panel call.
            crate::gemm::abt_into(
                &upack[..nb * len],
                nb,
                &upack[..nb * len],
                nb,
                len,
                &mut w[..nb * nb],
                nb,
            );

            // Upper-triangular T of the forward product
            // P_{i0} ⋯ P_{i1-1} = I − U_col T U_colᵀ (LAPACK `larft`):
            // column j is −τ_j · T_{0..j,0..j} · (Uᵀu_j) with τ_j on the
            // diagonal. Applying the block then uses Tᵀ, because the
            // back-transform multiplies reflectors in ascending order.
            t[..nb * nb].fill(0.0);
            for j in 0..nb {
                let h = self.h[i0 + j];
                if h == 0.0 {
                    continue;
                }
                let tau = 1.0 / h;
                for r in 0..j {
                    let mut acc = 0.0;
                    for q in r..j {
                        acc += t[r * nb + q] * w[q * nb + j];
                    }
                    t[r * nb + j] = -tau * acc;
                }
                t[j * nb + j] = tau;
            }

            // S = U Vᵀ: panel dots of packed reflectors against the
            // strided eigenvector rows.
            crate::gemm::abt_strided_into(
                &upack[..nb * len],
                nb,
                len,
                vt,
                k,
                n,
                len,
                &mut s[..nb * k],
                k,
            );

            // M = Tᵀ S (small: nb×k), then V ← V − Uᵀ M as row axpys.
            for r in 0..nb {
                for c in 0..k {
                    let mut acc = 0.0;
                    for (q, sq) in s[..(r + 1) * k].chunks_exact(k).enumerate() {
                        acc += t[q * nb + r] * sq[c];
                    }
                    m[r * k + c] = acc;
                }
            }
            for (c, row) in vt.chunks_exact_mut(n).enumerate() {
                for r in 0..nb {
                    let coeff = m[r * k + c];
                    if coeff != 0.0 {
                        vector::axpy(-coeff, &upack[r * len..r * len + len], &mut row[..len]);
                    }
                }
            }
            i0 = i1;
        }
    }
}

/// Householder-tridiagonalize a symmetric matrix without accumulating
/// `Q` (EISPACK `tred1` lineage; same reduction as [`tridiagonalize`]
/// minus the `O(n³)` accumulation pass).
///
/// The produced `diagonal`/`off_diagonal` agree with [`tridiagonalize`]
/// up to floating-point summation order — the inner products here run
/// through the micro-kernel's unrolled dot instead of a serial chain.
///
/// # Panics
/// Panics if `a` is not square. Symmetry is the caller's responsibility;
/// only the lower triangle is read.
pub fn tridiagonalize_factored(a: &Matrix) -> FactoredTridiagonal {
    assert!(
        a.is_square(),
        "tridiagonalize_factored: matrix must be square"
    );
    let n = a.nrows();
    let mut z: Vec<f64> = a.as_slice().to_vec();
    let mut d = vec![0.0; n];
    let mut e = vec![0.0; n];
    let mut hs = vec![0.0; n];

    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        if l > 0 {
            let mut scale = 0.0;
            for k in 0..=l {
                scale += z[i * n + k].abs();
            }
            if scale == 0.0 {
                e[i] = z[i * n + l];
            } else {
                let (head, tail) = z.split_at_mut(i * n);
                let u = &mut tail[..=l];
                for x in u.iter_mut() {
                    *x /= scale;
                }
                h = crate::gemm::dot1(u, u, l + 1);
                let f = u[l];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                u[l] = f - g;

                // p = A_sub · u, accumulated row by row so every read is
                // a contiguous row prefix of the lower triangle.
                e[..=l].fill(0.0);
                for (kk, uk) in u.iter().enumerate() {
                    let row = &head[kk * n..kk * n + kk + 1];
                    e[kk] += crate::gemm::dot1(row, &u[..=kk], kk + 1);
                    vector::axpy(*uk, &row[..kk], &mut e[..kk]);
                }

                let mut f_acc = 0.0;
                for (ej, uj) in e[..=l].iter_mut().zip(u.iter()) {
                    *ej /= h;
                    f_acc += *ej * *uj;
                }
                let hh = f_acc / (h + h);
                for (ej, uj) in e[..=l].iter_mut().zip(u.iter()) {
                    *ej -= hh * *uj;
                }

                // Rank-2 update A_sub ← A_sub − u pᵀ − p uᵀ, two axpys
                // per lower-triangle row.
                for j in 0..=l {
                    let fj = u[j];
                    let gj = e[j];
                    let row = &mut head[j * n..j * n + j + 1];
                    vector::axpy(-fj, &e[..=j], row);
                    vector::axpy(-gj, &u[..=j], row);
                }
            }
        } else {
            e[i] = z[i * n + l];
        }
        hs[i] = h;
    }
    for i in 0..n {
        d[i] = z[i * n + i];
    }
    if n > 0 {
        e[0] = 0.0;
    }

    FactoredTridiagonal {
        diagonal: d,
        off_diagonal: e,
        reflectors: z,
        h: hs,
        n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn orthogonality_error(q: &Matrix) -> f64 {
        q.transpose()
            .matmul(q)
            .max_abs_diff(&Matrix::identity(q.nrows()))
    }

    #[test]
    fn empty_and_singleton() {
        let t = tridiagonalize(&Matrix::zeros(0, 0));
        assert_eq!(t.order(), 0);
        let t = tridiagonalize(&Matrix::from_rows(&[&[7.0]]));
        assert_eq!(t.diagonal, vec![7.0]);
        assert_eq!(t.q[(0, 0)], 1.0);
    }

    #[test]
    fn already_tridiagonal_is_preserved_up_to_sign() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, 0.0], &[1.0, 2.0, 1.0], &[0.0, 1.0, 2.0]]);
        let t = tridiagonalize(&a);
        // Reconstruction must hold regardless of sign conventions.
        let rec = t.q.matmul(&t.to_dense()).matmul(&t.q.transpose());
        assert!(rec.max_abs_diff(&a) < 1e-10);
    }

    #[test]
    fn reconstruction_and_orthogonality_4x4() {
        let a = Matrix::from_rows(&[
            &[4.0, 1.0, -2.0, 2.0],
            &[1.0, 2.0, 0.0, 1.0],
            &[-2.0, 0.0, 3.0, -2.0],
            &[2.0, 1.0, -2.0, -1.0],
        ]);
        let t = tridiagonalize(&a);
        assert!(orthogonality_error(&t.q) < 1e-10, "Q not orthogonal");
        let rec = t.q.matmul(&t.to_dense()).matmul(&t.q.transpose());
        assert!(rec.max_abs_diff(&a) < 1e-10, "Q T Q^T != A");
    }

    #[test]
    fn t_is_tridiagonal() {
        let a = Matrix::from_fn(6, 6, |i, j| 1.0 / (1.0 + (i as f64 - j as f64).abs()));
        let t = tridiagonalize(&a);
        let dense = t.to_dense();
        for i in 0..6 {
            for j in 0..6 {
                if (i as i64 - j as i64).abs() > 1 {
                    assert_eq!(dense[(i, j)], 0.0);
                }
            }
        }
    }

    #[test]
    fn zero_matrix_reduces_to_zero() {
        let t = tridiagonalize(&Matrix::zeros(5, 5));
        assert!(t.diagonal.iter().all(|&v| v == 0.0));
        assert!(t.off_diagonal.iter().all(|&v| v == 0.0));
        assert!(orthogonality_error(&t.q) < 1e-12);
    }
}
