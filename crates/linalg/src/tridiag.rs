//! Householder reduction of a real symmetric matrix to tridiagonal form.
//!
//! This is the transformation the DASC paper invokes before QR/QL
//! iteration ("we transform Lᵢ into a symmetric tridiagonal matrix Aᵢ").
//! The implementation follows the classic EISPACK `tred2` routine,
//! accumulating the orthogonal similarity transform `Q` so that
//! `A = Q · T · Qᵀ`.

use crate::Matrix;

/// A symmetric tridiagonal matrix together with the accumulated
/// orthogonal transform that produced it.
#[derive(Clone, Debug)]
pub struct Tridiagonal {
    /// Diagonal entries `d[0..n]`.
    pub diagonal: Vec<f64>,
    /// Sub/super-diagonal entries; `off_diagonal[i]` couples `i-1` and `i`
    /// (`off_diagonal[0]` is unused and kept at `0.0`, matching EISPACK).
    pub off_diagonal: Vec<f64>,
    /// Accumulated orthogonal matrix `Q` with `A = Q T Qᵀ`.
    pub q: Matrix,
}

impl Tridiagonal {
    /// Order of the matrix.
    pub fn order(&self) -> usize {
        self.diagonal.len()
    }

    /// Reconstruct the dense tridiagonal matrix `T` (for tests/debugging).
    pub fn to_dense(&self) -> Matrix {
        let n = self.order();
        let mut t = Matrix::zeros(n, n);
        for i in 0..n {
            t[(i, i)] = self.diagonal[i];
            if i > 0 {
                t[(i, i - 1)] = self.off_diagonal[i];
                t[(i - 1, i)] = self.off_diagonal[i];
            }
        }
        t
    }
}

/// Householder-tridiagonalize a symmetric matrix (EISPACK `tred2`).
///
/// # Panics
/// Panics if `a` is not square. Symmetry is the caller's responsibility;
/// only the lower triangle is read.
pub fn tridiagonalize(a: &Matrix) -> Tridiagonal {
    assert!(a.is_square(), "tridiagonalize: matrix must be square");
    let n = a.nrows();
    let mut z = a.clone();
    let mut d = vec![0.0; n];
    let mut e = vec![0.0; n];

    if n == 0 {
        return Tridiagonal {
            diagonal: d,
            off_diagonal: e,
            q: z,
        };
    }
    if n == 1 {
        d[0] = z[(0, 0)];
        z[(0, 0)] = 1.0;
        return Tridiagonal {
            diagonal: d,
            off_diagonal: e,
            q: z,
        };
    }

    // Householder reduction, working from the last row upwards.
    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        let mut scale = 0.0;
        if l > 0 {
            for k in 0..=l {
                scale += z[(i, k)].abs();
            }
            if scale == 0.0 {
                e[i] = z[(i, l)];
            } else {
                for k in 0..=l {
                    z[(i, k)] /= scale;
                    h += z[(i, k)] * z[(i, k)];
                }
                let mut f = z[(i, l)];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                z[(i, l)] = f - g;
                f = 0.0;
                for j in 0..=l {
                    z[(j, i)] = z[(i, j)] / h;
                    let mut g = 0.0;
                    for k in 0..=j {
                        g += z[(j, k)] * z[(i, k)];
                    }
                    for k in (j + 1)..=l {
                        g += z[(k, j)] * z[(i, k)];
                    }
                    e[j] = g / h;
                    f += e[j] * z[(i, j)];
                }
                let hh = f / (h + h);
                for j in 0..=l {
                    let f = z[(i, j)];
                    let g = e[j] - hh * f;
                    e[j] = g;
                    for k in 0..=j {
                        let delta = f * e[k] + g * z[(i, k)];
                        z[(j, k)] -= delta;
                    }
                }
            }
        } else {
            e[i] = z[(i, l)];
        }
        d[i] = h;
    }

    // Accumulate the transformation matrix.
    d[0] = 0.0;
    e[0] = 0.0;
    for i in 0..n {
        if d[i] != 0.0 {
            for j in 0..i {
                let mut g = 0.0;
                for k in 0..i {
                    g += z[(i, k)] * z[(k, j)];
                }
                for k in 0..i {
                    let delta = g * z[(k, i)];
                    z[(k, j)] -= delta;
                }
            }
        }
        d[i] = z[(i, i)];
        z[(i, i)] = 1.0;
        for j in 0..i {
            z[(j, i)] = 0.0;
            z[(i, j)] = 0.0;
        }
    }

    Tridiagonal {
        diagonal: d,
        off_diagonal: e,
        q: z,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn orthogonality_error(q: &Matrix) -> f64 {
        q.transpose()
            .matmul(q)
            .max_abs_diff(&Matrix::identity(q.nrows()))
    }

    #[test]
    fn empty_and_singleton() {
        let t = tridiagonalize(&Matrix::zeros(0, 0));
        assert_eq!(t.order(), 0);
        let t = tridiagonalize(&Matrix::from_rows(&[&[7.0]]));
        assert_eq!(t.diagonal, vec![7.0]);
        assert_eq!(t.q[(0, 0)], 1.0);
    }

    #[test]
    fn already_tridiagonal_is_preserved_up_to_sign() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, 0.0], &[1.0, 2.0, 1.0], &[0.0, 1.0, 2.0]]);
        let t = tridiagonalize(&a);
        // Reconstruction must hold regardless of sign conventions.
        let rec = t.q.matmul(&t.to_dense()).matmul(&t.q.transpose());
        assert!(rec.max_abs_diff(&a) < 1e-10);
    }

    #[test]
    fn reconstruction_and_orthogonality_4x4() {
        let a = Matrix::from_rows(&[
            &[4.0, 1.0, -2.0, 2.0],
            &[1.0, 2.0, 0.0, 1.0],
            &[-2.0, 0.0, 3.0, -2.0],
            &[2.0, 1.0, -2.0, -1.0],
        ]);
        let t = tridiagonalize(&a);
        assert!(orthogonality_error(&t.q) < 1e-10, "Q not orthogonal");
        let rec = t.q.matmul(&t.to_dense()).matmul(&t.q.transpose());
        assert!(rec.max_abs_diff(&a) < 1e-10, "Q T Q^T != A");
    }

    #[test]
    fn t_is_tridiagonal() {
        let a = Matrix::from_fn(6, 6, |i, j| 1.0 / (1.0 + (i as f64 - j as f64).abs()));
        let t = tridiagonalize(&a);
        let dense = t.to_dense();
        for i in 0..6 {
            for j in 0..6 {
                if (i as i64 - j as i64).abs() > 1 {
                    assert_eq!(dense[(i, j)], 0.0);
                }
            }
        }
    }

    #[test]
    fn zero_matrix_reduces_to_zero() {
        let t = tridiagonalize(&Matrix::zeros(5, 5));
        assert!(t.diagonal.iter().all(|&v| v == 0.0));
        assert!(t.off_diagonal.iter().all(|&v| v == 0.0));
        assert!(orthogonality_error(&t.q) < 1e-12);
    }
}
