//! Dense and sparse linear algebra substrate for the DASC reproduction.
//!
//! The DASC paper (Gao, Abd-Almageed, Hefeeda; HPDC'12) relies on a stack
//! of numerical routines that in the original system were provided by
//! Mahout, PARPACK and Matlab. This crate implements that substrate from
//! scratch:
//!
//! * [`Matrix`] — a row-major dense `f64` matrix with the usual algebra.
//! * [`CsrMatrix`] — compressed sparse row storage used by the PSC
//!   baseline's t-nearest-neighbour similarity matrices.
//! * [`tridiagonalize`] — Householder reduction of a symmetric matrix to
//!   tridiagonal form (the transformation the paper describes ahead of QR).
//! * [`SymmetricEigen`] — full symmetric eigendecomposition via implicit
//!   QL with Wilkinson shifts on the tridiagonal form.
//! * [`lanczos`] — Lanczos iteration with full reorthogonalization for the
//!   leading eigenpairs of any [`MatVec`] operator (PARPACK substitute).
//! * [`qr`] — Householder QR used for orthonormalization (Nyström).
//!
//! Everything is `f64` and deterministic within a kernel backend: the
//! hot gemm/dot/axpy primitives dispatch once per process to a SIMD
//! backend (AVX2+FMA or NEON) or the portable scalar kernels via
//! [`KernelBackend`], selectable with `DASC_KERNEL=scalar|auto`. The
//! only `unsafe` in the crate is the `#[target_feature]` kernels in
//! [`simd`], gated behind runtime CPU-feature detection.
//!
//! ```
//! use dasc_linalg::{symmetric_eigen, Matrix};
//!
//! let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
//! let eig = symmetric_eigen(&a);
//! assert!((eig.eigenvalues[0] - 1.0).abs() < 1e-12);
//! assert!((eig.eigenvalues[1] - 3.0).abs() < 1e-12);
//! ```

pub mod cholesky;
pub mod dense;
pub mod eigen;
pub mod eigen_k;
pub mod gemm;
pub mod lanczos;
pub mod operator;
pub mod points;
pub mod qr;
pub mod simd;
pub mod sparse;
pub mod svd;
pub mod tridiag;
pub mod vector;

pub use cholesky::{Cholesky, NotPositiveDefinite};
pub use dense::Matrix;
pub use eigen::{symmetric_eigen, tridiagonal_eigen, SymmetricEigen};
pub use eigen_k::{
    symmetric_eigen_topk, tridiagonal_eigenvalues, tridiagonal_eigenvectors, TopEigen,
};
pub use gemm::{abt_into, pairwise_sq_dists, row_sq_norms, row_sq_norms_flat, sq_dists_into};
pub use lanczos::{lanczos, LanczosOptions, LanczosResult};
pub use operator::MatVec;
pub use points::{FlatPoints, FlatPointsView, PointsView};
pub use qr::{qr, QrDecomposition};
pub use simd::KernelBackend;
pub use sparse::{CooBuilder, CsrMatrix};
pub use svd::{energy_captured, numerical_rank, singular_values};
pub use tridiag::{tridiagonalize, tridiagonalize_factored, FactoredTridiagonal, Tridiagonal};
