//! Compressed sparse row (CSR) matrices.
//!
//! The PSC baseline (Chen et al.) sparsifies the similarity matrix to
//! t nearest neighbours before eigensolving; CSR is the storage for those
//! matrices. Construction goes through a coordinate-format builder that
//! merges duplicate entries.

use rayon::prelude::*;

use crate::operator::MatVec;

/// Coordinate-format builder for a [`CsrMatrix`].
///
/// Entries may be pushed in any order; duplicates at the same `(i, j)`
/// position are summed when the matrix is finalized.
#[derive(Clone, Debug)]
pub struct CooBuilder {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl CooBuilder {
    /// Start building a `rows × cols` sparse matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Add `value` at `(i, j)`. Zero values are skipped.
    ///
    /// # Panics
    /// Panics if the position is out of bounds.
    pub fn push(&mut self, i: usize, j: usize, value: f64) {
        assert!(
            i < self.rows && j < self.cols,
            "CooBuilder: entry out of bounds"
        );
        if value != 0.0 {
            self.entries.push((i, j, value));
        }
    }

    /// Add `value` at both `(i, j)` and `(j, i)`.
    pub fn push_symmetric(&mut self, i: usize, j: usize, value: f64) {
        self.push(i, j, value);
        if i != j {
            self.push(j, i, value);
        }
    }

    /// Number of raw (pre-merge) entries accumulated so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries have been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Finalize into CSR form, merging duplicates by summation.
    pub fn build(mut self) -> CsrMatrix {
        self.entries.sort_unstable_by_key(|a| (a.0, a.1));
        let mut row_ptr = vec![0usize; self.rows + 1];
        let mut col_idx = Vec::with_capacity(self.entries.len());
        let mut values = Vec::with_capacity(self.entries.len());

        let mut it = self.entries.into_iter().peekable();
        while let Some((i, j, mut v)) = it.next() {
            while let Some(&(ni, nj, nv)) = it.peek() {
                if ni == i && nj == j {
                    v += nv;
                    it.next();
                } else {
                    break;
                }
            }
            col_idx.push(j);
            values.push(v);
            row_ptr[i + 1] += 1;
        }
        for i in 0..self.rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        }
    }
}

/// Compressed sparse row matrix of `f64`.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structural) non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterate the stored entries of row `i` as `(col, value)` pairs.
    pub fn row_iter(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        self.col_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Value at `(i, j)` (zero if not stored).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.row_iter(i)
            .find(|&(c, _)| c == j)
            .map(|(_, v)| v)
            .unwrap_or(0.0)
    }

    /// Row sums (degree vector for similarity graphs).
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows)
            .map(|i| self.row_iter(i).map(|(_, v)| v).sum())
            .collect()
    }

    /// Frobenius norm over stored entries.
    pub fn frobenius_norm(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Symmetry check (structural + numerical) within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for (j, v) in self.row_iter(i) {
                if (self.get(j, i) - v).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Scale every stored value by `alpha`.
    pub fn scale_inplace(&mut self, alpha: f64) {
        for v in &mut self.values {
            *v *= alpha;
        }
    }

    /// Left/right diagonal scaling in place:
    /// `A ← diag(left) · A · diag(right)`, the operation that turns a
    /// similarity matrix into the normalized Laplacian `D^{-1/2} S D^{-1/2}`.
    ///
    /// # Panics
    /// Panics if the scaling vectors have the wrong length.
    #[allow(clippy::needless_range_loop)] // row index drives both arrays
    pub fn diag_scale(&mut self, left: &[f64], right: &[f64]) {
        assert_eq!(left.len(), self.rows, "diag_scale: bad left length");
        assert_eq!(right.len(), self.cols, "diag_scale: bad right length");
        for i in 0..self.rows {
            let lo = self.row_ptr[i];
            let hi = self.row_ptr[i + 1];
            for k in lo..hi {
                self.values[k] *= left[i] * right[self.col_idx[k]];
            }
        }
    }

    /// Dense memory an equivalent full matrix would need, in bytes,
    /// under the paper's 4-byte single-precision accounting (Eq. 12).
    pub fn dense_equivalent_bytes(&self) -> usize {
        self.rows * self.cols * 4
    }

    /// Actual storage footprint in bytes (values + indices + row pointers),
    /// counting values at the paper's 4-byte convention.
    pub fn storage_bytes(&self) -> usize {
        self.values.len() * 4
            + self.col_idx.len() * std::mem::size_of::<usize>()
            + self.row_ptr.len() * std::mem::size_of::<usize>()
    }
}

impl MatVec for CsrMatrix {
    fn dim(&self) -> usize {
        assert_eq!(self.rows, self.cols, "MatVec requires a square matrix");
        self.rows
    }

    fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "csr matvec: dimension mismatch");
        y.par_iter_mut().enumerate().for_each(|(i, yi)| {
            let lo = self.row_ptr[i];
            let hi = self.row_ptr[i + 1];
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            *yi = acc;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        let mut b = CooBuilder::new(3, 3);
        b.push(0, 0, 1.0);
        b.push(0, 2, 2.0);
        b.push(1, 1, 3.0);
        b.push(2, 0, 4.0);
        b.build()
    }

    #[test]
    fn build_and_get() {
        let m = sample();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(2, 2), 0.0);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut b = CooBuilder::new(2, 2);
        b.push(0, 1, 1.5);
        b.push(0, 1, 2.5);
        let m = b.build();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 1), 4.0);
    }

    #[test]
    fn zeros_are_skipped() {
        let mut b = CooBuilder::new(2, 2);
        b.push(0, 0, 0.0);
        assert!(b.is_empty());
    }

    #[test]
    fn push_symmetric_mirrors() {
        let mut b = CooBuilder::new(3, 3);
        b.push_symmetric(0, 2, 5.0);
        b.push_symmetric(1, 1, 7.0);
        let m = b.build();
        assert_eq!(m.get(0, 2), 5.0);
        assert_eq!(m.get(2, 0), 5.0);
        assert_eq!(m.get(1, 1), 7.0);
        assert!(m.is_symmetric(0.0));
    }

    #[test]
    fn matvec_matches_dense() {
        let m = sample();
        let y = m.apply(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![7.0, 6.0, 4.0]);
    }

    #[test]
    fn row_sums_and_fnorm() {
        let m = sample();
        assert_eq!(m.row_sums(), vec![3.0, 3.0, 4.0]);
        let expect = (1.0f64 + 4.0 + 9.0 + 16.0).sqrt();
        assert!((m.frobenius_norm() - expect).abs() < 1e-12);
    }

    #[test]
    fn diag_scale_is_normalized_laplacian_step() {
        let mut b = CooBuilder::new(2, 2);
        b.push(0, 0, 4.0);
        b.push(0, 1, 2.0);
        b.push(1, 0, 2.0);
        b.push(1, 1, 1.0);
        let mut m = b.build();
        let d = m.row_sums();
        let inv_sqrt: Vec<f64> = d.iter().map(|v| 1.0 / v.sqrt()).collect();
        m.diag_scale(&inv_sqrt, &inv_sqrt);
        // L[0,1] = 2 / sqrt(6 * 3)
        assert!((m.get(0, 1) - 2.0 / (6.0f64 * 3.0).sqrt()).abs() < 1e-12);
        assert!(m.is_symmetric(1e-12));
    }

    #[test]
    fn empty_rows_are_fine() {
        let b = CooBuilder::new(4, 4);
        let m = b.build();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.apply(&[1.0; 4]), vec![0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_push_panics() {
        let mut b = CooBuilder::new(2, 2);
        b.push(2, 0, 1.0);
    }

    #[test]
    fn storage_accounting() {
        let m = sample();
        assert_eq!(m.dense_equivalent_bytes(), 9 * 4);
        assert!(m.storage_bytes() < m.dense_equivalent_bytes() * 10);
    }
}
