//! Cholesky decomposition and SPD linear solves.
//!
//! Regularized kernel (Gram) matrices are symmetric positive definite;
//! Cholesky is the right factorization for the kernel ridge regression
//! consumer built on DASC's approximate Gram matrix.

use crate::Matrix;

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Clone, Debug)]
pub struct Cholesky {
    l: Matrix,
}

/// Error for non-SPD input.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NotPositiveDefinite {
    /// Pivot index where the factorization broke down.
    pub pivot: usize,
}

impl std::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix not positive definite at pivot {}", self.pivot)
    }
}

impl std::error::Error for NotPositiveDefinite {}

impl Cholesky {
    /// Factor a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read.
    ///
    /// # Panics
    /// Panics if `a` is not square.
    pub fn new(a: &Matrix) -> Result<Self, NotPositiveDefinite> {
        assert!(a.is_square(), "cholesky: matrix must be square");
        let n = a.nrows();
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            let mut diag = a[(j, j)];
            for k in 0..j {
                diag -= l[(j, k)] * l[(j, k)];
            }
            if diag <= 0.0 || !diag.is_finite() {
                return Err(NotPositiveDefinite { pivot: j });
            }
            let djj = diag.sqrt();
            l[(j, j)] = djj;
            for i in (j + 1)..n {
                let mut v = a[(i, j)];
                for k in 0..j {
                    v -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = v / djj;
            }
        }
        Ok(Self { l })
    }

    /// The lower-triangular factor.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solve `A x = b` via forward/back substitution.
    ///
    /// # Panics
    /// Panics if `b.len()` mismatches the factor's order.
    #[allow(clippy::needless_range_loop)] // triangular-solve indexing
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.nrows();
        assert_eq!(b.len(), n, "cholesky solve: dimension mismatch");
        // Forward: L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut v = b[i];
            for k in 0..i {
                v -= self.l[(i, k)] * y[k];
            }
            y[i] = v / self.l[(i, i)];
        }
        // Back: Lᵀ x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut v = y[i];
            for k in (i + 1)..n {
                v -= self.l[(k, i)] * x[k];
            }
            x[i] = v / self.l[(i, i)];
        }
        x
    }

    /// log-determinant of `A` (`2 Σ ln L_ii`), useful for model scoring.
    pub fn log_det(&self) -> f64 {
        (0..self.l.nrows())
            .map(|i| self.l[(i, i)].ln())
            .sum::<f64>()
            * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd_example() -> Matrix {
        Matrix::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 5.0, 1.5], &[0.6, 1.5, 3.0]])
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd_example();
        let ch = Cholesky::new(&a).unwrap();
        let rec = ch.l().matmul(&ch.l().transpose());
        assert!(rec.max_abs_diff(&a) < 1e-12);
        // Factor is lower triangular.
        for i in 0..3 {
            for j in (i + 1)..3 {
                assert_eq!(ch.l()[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn solve_matches_direct_check() {
        let a = spd_example();
        let ch = Cholesky::new(&a).unwrap();
        let b = vec![1.0, -2.0, 0.5];
        let x = ch.solve(&b);
        let mut ax = vec![0.0; 3];
        a.matvec_into(&x, &mut ax);
        for (l, r) in ax.iter().zip(&b) {
            assert!((l - r).abs() < 1e-12);
        }
    }

    #[test]
    fn identity_solve_is_identity() {
        let ch = Cholesky::new(&Matrix::identity(4)).unwrap();
        let b = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(ch.solve(&b), b);
        assert!((ch.log_det() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn log_det_known_value() {
        // diag(4, 9): det = 36, ln 36.
        let a = Matrix::from_rows(&[&[4.0, 0.0], &[0.0, 9.0]]);
        let ch = Cholesky::new(&a).unwrap();
        assert!((ch.log_det() - 36.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn indefinite_matrix_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        let err = Cholesky::new(&a).unwrap_err();
        assert_eq!(err.pivot, 1);
    }

    #[test]
    fn zero_matrix_rejected() {
        assert!(Cholesky::new(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn random_spd_roundtrip() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let n = 12;
        // A = B Bᵀ + n·I is SPD.
        let b_mat = Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
        let mut a = b_mat.matmul(&b_mat.transpose());
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        let ch = Cholesky::new(&a).unwrap();
        let b: Vec<f64> = (0..n).map(|i| i as f64 - 3.0).collect();
        let x = ch.solve(&b);
        let mut ax = vec![0.0; n];
        a.matvec_into(&x, &mut ax);
        for (l, r) in ax.iter().zip(&b) {
            assert!((l - r).abs() < 1e-9);
        }
    }
}
