//! Householder QR decomposition.
//!
//! Used by the Nyström baseline to orthonormalize extended eigenvector
//! blocks, and generally available as the substrate's orthogonalization
//! primitive.

use crate::Matrix;

/// QR decomposition `A = Q R` with `Q` having orthonormal columns
/// (thin/reduced form: `Q` is `m × n`, `R` is `n × n`, for `m ≥ n`).
#[derive(Clone, Debug)]
pub struct QrDecomposition {
    /// Orthonormal factor (`m × n`).
    pub q: Matrix,
    /// Upper-triangular factor (`n × n`).
    pub r: Matrix,
}

/// Compute the thin QR decomposition of `a` by Householder reflections.
///
/// # Panics
/// Panics if `a` has more columns than rows.
pub fn qr(a: &Matrix) -> QrDecomposition {
    let (m, n) = a.shape();
    assert!(m >= n, "qr: requires rows >= cols (got {m}x{n})");
    let mut work = a.clone();
    // Householder vectors are stored column by column; we also retain the
    // scalar factors to re-apply the reflections when forming Q.
    let mut vs: Vec<Vec<f64>> = Vec::with_capacity(n);

    for k in 0..n {
        // Build the reflection that zeroes work[k+1.., k].
        let mut x: Vec<f64> = (k..m).map(|i| work[(i, k)]).collect();
        let alpha = {
            let norm = x.iter().map(|v| v * v).sum::<f64>().sqrt();
            if x[0] >= 0.0 {
                -norm
            } else {
                norm
            }
        };
        if alpha == 0.0 {
            // Column already zero below the diagonal; identity reflection.
            vs.push(vec![0.0; m - k]);
            continue;
        }
        x[0] -= alpha;
        let vnorm = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        if vnorm > 0.0 {
            for v in &mut x {
                *v /= vnorm;
            }
        }
        // Apply H = I - 2vvᵀ to the trailing submatrix.
        for j in k..n {
            let dot: f64 = (0..m - k).map(|i| x[i] * work[(k + i, j)]).sum();
            for i in 0..m - k {
                work[(k + i, j)] -= 2.0 * x[i] * dot;
            }
        }
        vs.push(x);
    }

    // R is the upper n×n triangle of the transformed matrix.
    let mut r = Matrix::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            r[(i, j)] = work[(i, j)];
        }
    }

    // Form thin Q by applying the reflections, in reverse, to the first
    // n columns of the identity.
    let mut q = Matrix::zeros(m, n);
    for j in 0..n {
        q[(j, j)] = 1.0;
    }
    for k in (0..n).rev() {
        let v = &vs[k];
        if v.iter().all(|&x| x == 0.0) {
            continue;
        }
        for j in 0..n {
            let dot: f64 = (0..m - k).map(|i| v[i] * q[(k + i, j)]).sum();
            for i in 0..m - k {
                q[(k + i, j)] -= 2.0 * v[i] * dot;
            }
        }
    }

    QrDecomposition { q, r }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_qr(a: &Matrix, tol: f64) {
        let d = qr(a);
        let (m, n) = a.shape();
        assert_eq!(d.q.shape(), (m, n));
        assert_eq!(d.r.shape(), (n, n));
        // A = Q R.
        assert!(d.q.matmul(&d.r).max_abs_diff(a) < tol, "A != QR");
        // Qᵀ Q = I.
        let g = d.q.transpose().matmul(&d.q);
        assert!(
            g.max_abs_diff(&Matrix::identity(n)) < tol,
            "Q not orthonormal"
        );
        // R upper triangular.
        for i in 0..n {
            for j in 0..i {
                assert_eq!(d.r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn square_example() {
        let a = Matrix::from_rows(&[
            &[12.0, -51.0, 4.0],
            &[6.0, 167.0, -68.0],
            &[-4.0, 24.0, -41.0],
        ]);
        check_qr(&a, 1e-10);
    }

    #[test]
    fn tall_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0], &[7.0, 8.0]]);
        check_qr(&a, 1e-10);
    }

    #[test]
    fn identity_decomposes_validly() {
        // Householder sign conventions may give Q = R = -I; only the
        // invariants matter.
        let a = Matrix::identity(4);
        check_qr(&a, 1e-12);
        let d = qr(&a);
        for i in 0..4 {
            assert!((d.r[(i, i)].abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn rank_deficient_column() {
        // Second column is a multiple of the first; QR still reconstructs.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let d = qr(&a);
        assert!(d.q.matmul(&d.r).max_abs_diff(&a) < 1e-10);
    }

    #[test]
    #[should_panic(expected = "rows >= cols")]
    fn wide_matrix_panics() {
        qr(&Matrix::zeros(2, 3));
    }

    #[test]
    fn random_tall_reconstruction() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        let a = Matrix::from_fn(20, 6, |_, _| rng.gen_range(-1.0..1.0));
        check_qr(&a, 1e-9);
    }
}
