//! Runtime-dispatched SIMD kernel backend for the flat-buffer hot loops.
//!
//! Every O(n²) loop in the pipeline bottoms out in a handful of
//! primitives over contiguous `f64` rows: the unrolled dot product and
//! the 4-column panel kernel behind `gemm::{abt_into, sq_dists_into}`,
//! plus `axpy` on the Lanczos path. This module provides explicitly
//! vectorized implementations of those primitives — AVX2+FMA on
//! `x86_64`, NEON on `aarch64` — behind a process-wide
//! [`KernelBackend`] resolved exactly once from the `DASC_KERNEL`
//! environment variable:
//!
//! * `DASC_KERNEL=auto` (or unset) — the best backend the CPU supports,
//!   probed with `is_x86_feature_detected!` / mandated-NEON on aarch64.
//! * `DASC_KERNEL=scalar` — the portable unrolled-scalar kernels,
//!   bitwise identical to the pre-SIMD code on every host.
//! * `DASC_KERNEL=avx2fma` / `DASC_KERNEL=neon` — force a specific SIMD
//!   backend (panics at first use if the host lacks it); useful for
//!   pinning benchmarks and reproducing results.
//!
//! # Determinism contract
//!
//! *Within* a backend, every kernel uses a fixed lane and accumulator
//! layout that depends only on the operand rows and the depth `dim` —
//! never on tiling position or thread count — so parallel drivers
//! chunking over row panels reproduce the single-threaded result bit
//! for bit, exactly as the scalar kernels always have.
//!
//! *Across* backends, results differ in the low bits: FMA contracts the
//! multiply-add rounding step and the lane layout changes the summation
//! order, so cross-backend agreement is tolerance-based (≤ 1e-12
//! entrywise on normalized inputs; see
//! `crates/linalg/tests/simd_equivalence.rs`).
//!
//! # Safety
//!
//! This is the only module in the crate using `unsafe`: the SIMD
//! kernels are `#[target_feature]` functions and the dispatcher only
//! calls them after [`KernelBackend::is_available`] confirmed the CPU
//! feature at resolution time. All loads/stores stay inside the slices
//! passed in; bounds are established by the callers' asserts exactly as
//! on the scalar path.

use std::sync::OnceLock;

/// Which kernel implementation the process uses for the gemm panel,
/// dot, and axpy primitives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelBackend {
    /// Portable unrolled-scalar kernels (the pre-SIMD instruction
    /// sequences, bit-identical on every host).
    Scalar,
    /// AVX2 + FMA on `x86_64`: 4-lane f64 vectors, fused multiply-add.
    Avx2Fma,
    /// NEON on `aarch64`: 2-lane f64 vectors, fused multiply-add.
    Neon,
}

impl KernelBackend {
    /// Stable label used in obs metrics, bench JSON, and `DASC_KERNEL`.
    pub fn as_str(self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Avx2Fma => "avx2fma",
            KernelBackend::Neon => "neon",
        }
    }

    /// Whether this backend can run on the current host.
    pub fn is_available(self) -> bool {
        match self {
            KernelBackend::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            KernelBackend::Avx2Fma => {
                is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
            }
            #[cfg(target_arch = "aarch64")]
            KernelBackend::Neon => std::arch::is_aarch64_feature_detected!("neon"),
            #[allow(unreachable_patterns)] // arms above are cfg-gated
            _ => false,
        }
    }

    /// The best backend the current CPU supports.
    pub fn detect_best() -> Self {
        for candidate in [KernelBackend::Avx2Fma, KernelBackend::Neon] {
            if candidate.is_available() {
                return candidate;
            }
        }
        KernelBackend::Scalar
    }

    /// Every backend available on this host, scalar first — the
    /// enumeration benchmarks iterate to report per-backend throughput.
    pub fn all_available() -> Vec<Self> {
        [
            KernelBackend::Scalar,
            KernelBackend::Avx2Fma,
            KernelBackend::Neon,
        ]
        .into_iter()
        .filter(|b| b.is_available())
        .collect()
    }

    /// Parse a `DASC_KERNEL` value against a detected-best backend.
    ///
    /// Split out from [`KernelBackend::resolved`] so the policy is
    /// testable without touching process environment.
    pub fn from_env_value(value: &str, best: Self) -> Result<Self, String> {
        match value.trim().to_ascii_lowercase().as_str() {
            "" | "auto" => Ok(best),
            "scalar" => Ok(KernelBackend::Scalar),
            "avx2fma" => Ok(KernelBackend::Avx2Fma),
            "neon" => Ok(KernelBackend::Neon),
            other => Err(format!(
                "DASC_KERNEL={other:?} is not a kernel backend \
                 (expected auto, scalar, avx2fma, or neon)"
            )),
        }
    }

    /// The process-wide backend, resolved once from `DASC_KERNEL`.
    ///
    /// # Panics
    /// Panics on first use if `DASC_KERNEL` names an unknown backend or
    /// one the host CPU does not support.
    pub fn resolved() -> Self {
        static RESOLVED: OnceLock<KernelBackend> = OnceLock::new();
        *RESOLVED.get_or_init(|| {
            let value = std::env::var("DASC_KERNEL").unwrap_or_default();
            let backend = KernelBackend::from_env_value(&value, KernelBackend::detect_best())
                .unwrap_or_else(|e| panic!("{e}"));
            assert!(
                backend.is_available(),
                "DASC_KERNEL={} requested, but this host does not support it",
                backend.as_str()
            );
            backend
        })
    }
}

/// Dot product of the first `dim` entries of two rows, on an explicit
/// backend. The scalar arm is the gemm `dot1` kernel — the tree's one
/// scalar summation order.
///
/// # Panics
/// Debug builds panic if either slice is shorter than `dim`.
#[inline]
pub fn dot(backend: KernelBackend, a: &[f64], b: &[f64], dim: usize) -> f64 {
    debug_assert!(a.len() >= dim && b.len() >= dim, "simd dot: short operand");
    match backend {
        KernelBackend::Scalar => crate::gemm::dot1(&a[..dim], &b[..dim], dim),
        KernelBackend::Avx2Fma => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: resolution/availability checked before this arm is
            // reachable; pointers cover `dim` elements per the assert.
            unsafe {
                avx2::dot(a.as_ptr(), b.as_ptr(), dim)
            }
            #[cfg(not(target_arch = "x86_64"))]
            crate::gemm::dot1(&a[..dim], &b[..dim], dim)
        }
        KernelBackend::Neon => {
            #[cfg(target_arch = "aarch64")]
            // SAFETY: as above.
            unsafe {
                neon::dot(a.as_ptr(), b.as_ptr(), dim)
            }
            #[cfg(not(target_arch = "aarch64"))]
            crate::gemm::dot1(&a[..dim], &b[..dim], dim)
        }
    }
}

/// `y += alpha * x` on an explicit backend (BLAS `axpy`). Elementwise,
/// so every backend touches `y[i]` exactly once; SIMD backends fuse the
/// multiply-add where the scalar path rounds twice.
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn axpy(backend: KernelBackend, alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    match backend {
        KernelBackend::Scalar => scalar_axpy(alpha, x, y),
        KernelBackend::Avx2Fma => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: availability checked at resolution; equal lengths
            // asserted above.
            unsafe {
                avx2::axpy(alpha, x, y)
            }
            #[cfg(not(target_arch = "x86_64"))]
            scalar_axpy(alpha, x, y)
        }
        KernelBackend::Neon => {
            #[cfg(target_arch = "aarch64")]
            // SAFETY: as above.
            unsafe {
                neon::axpy(alpha, x, y)
            }
            #[cfg(not(target_arch = "aarch64"))]
            scalar_axpy(alpha, x, y)
        }
    }
}

/// The pre-SIMD scalar axpy loop, kept verbatim for the scalar backend.
#[inline(always)]
fn scalar_axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// AVX2 + FMA kernels (`x86_64`). 4 × f64 per vector register.
///
/// Lane layout is fixed per kernel: accumulators are reduced in a fixed
/// order `(l0 + l2) + (l1 + l3)` and scalar tails are appended after the
/// horizontal sum, so a result depends only on the operands and `dim`.
#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2 {
    use core::arch::x86_64::*;

    /// Fixed-order horizontal sum of a 4-lane accumulator:
    /// `(l0 + l2) + (l1 + l3)`.
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn hsum(v: __m256d) -> f64 {
        let lo = _mm256_castpd256_pd128(v); // l0, l1
        let hi = _mm256_extractf128_pd(v, 1); // l2, l3
        let s = _mm_add_pd(lo, hi); // l0+l2, l1+l3
        _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)))
    }

    /// Unrolled dot product: two 4-lane FMA chains over the depth, then
    /// the fixed-order reduction, then the scalar tail.
    ///
    /// # Safety
    /// Requires AVX2+FMA and `dim` readable elements behind `a`/`b`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dot(a: *const f64, b: *const f64, dim: usize) -> f64 {
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let mut k = 0;
        while k + 8 <= dim {
            acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a.add(k)), _mm256_loadu_pd(b.add(k)), acc0);
            acc1 = _mm256_fmadd_pd(
                _mm256_loadu_pd(a.add(k + 4)),
                _mm256_loadu_pd(b.add(k + 4)),
                acc1,
            );
            k += 8;
        }
        if k + 4 <= dim {
            acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a.add(k)), _mm256_loadu_pd(b.add(k)), acc0);
            k += 4;
        }
        let mut s = hsum(_mm256_add_pd(acc0, acc1));
        while k < dim {
            s += *a.add(k) * *b.add(k);
            k += 1;
        }
        s
    }

    /// Panel kernel: one `A` row against four `B` rows, one 4-lane FMA
    /// accumulator per `B` row; the `A` vector is loaded once per depth
    /// step and reused across all four columns.
    ///
    /// # Safety
    /// Requires AVX2+FMA and `dim` readable elements behind every
    /// pointer.
    #[target_feature(enable = "avx2", enable = "fma")]
    #[allow(clippy::too_many_arguments)] // mirrors the scalar dot4 operands
    pub unsafe fn dot4(
        a: *const f64,
        b0: *const f64,
        b1: *const f64,
        b2: *const f64,
        b3: *const f64,
        dim: usize,
    ) -> [f64; 4] {
        let mut c0 = _mm256_setzero_pd();
        let mut c1 = _mm256_setzero_pd();
        let mut c2 = _mm256_setzero_pd();
        let mut c3 = _mm256_setzero_pd();
        let mut k = 0;
        while k + 4 <= dim {
            let av = _mm256_loadu_pd(a.add(k));
            c0 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b0.add(k)), c0);
            c1 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b1.add(k)), c1);
            c2 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b2.add(k)), c2);
            c3 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b3.add(k)), c3);
            k += 4;
        }
        let mut out = [hsum(c0), hsum(c1), hsum(c2), hsum(c3)];
        while k < dim {
            let av = *a.add(k);
            out[0] += av * *b0.add(k);
            out[1] += av * *b1.add(k);
            out[2] += av * *b2.add(k);
            out[3] += av * *b3.add(k);
            k += 1;
        }
        out
    }

    /// Fused `y += alpha * x`.
    ///
    /// # Safety
    /// Requires AVX2+FMA; slice lengths must match (caller asserts).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        let n = x.len();
        let av = _mm256_set1_pd(alpha);
        let (xp, yp) = (x.as_ptr(), y.as_mut_ptr());
        let mut k = 0;
        while k + 4 <= n {
            let fused = _mm256_fmadd_pd(av, _mm256_loadu_pd(xp.add(k)), _mm256_loadu_pd(yp.add(k)));
            _mm256_storeu_pd(yp.add(k), fused);
            k += 4;
        }
        while k < n {
            *yp.add(k) = alpha.mul_add(*xp.add(k), *yp.add(k));
            k += 1;
        }
    }

    /// The full tiled `A·Bᵀ` panel driver, compiled as one AVX2+FMA
    /// region so [`dot`]/[`dot4`] inline into the tile loop. The tiling
    /// structure mirrors the scalar driver in `gemm.rs` exactly: same
    /// `tile`-column B tiles, same 4-row groups on contiguous B, same
    /// remainder order — only the inner kernel differs.
    ///
    /// # Safety
    /// Requires AVX2+FMA. The caller must have validated the shapes
    /// (`gemm::panel_driver_with` asserts before dispatching here).
    #[target_feature(enable = "avx2", enable = "fma")]
    #[allow(clippy::too_many_arguments)] // BLAS-style panel signature
    pub unsafe fn panel<F>(
        a: &[f64],
        ma: usize,
        lda: usize,
        b: &[f64],
        nb: usize,
        ldb: usize,
        dim: usize,
        out: &mut [f64],
        ldc: usize,
        tile: usize,
        finish: F,
    ) where
        F: Fn(usize, usize, f64) -> f64 + Copy,
    {
        let contiguous_b = ldb == dim;
        let (ap, bp) = (a.as_ptr(), b.as_ptr());
        for jb in (0..nb).step_by(tile) {
            let jend = (jb + tile).min(nb);
            for i in 0..ma {
                let ai = ap.add(i * lda);
                let orow = &mut out[i * ldc + jb..i * ldc + jend];
                let mut j = jb;
                if contiguous_b {
                    while j + 4 <= jend {
                        let brow = bp.add(j * dim);
                        let d = dot4(
                            ai,
                            brow,
                            brow.add(dim),
                            brow.add(2 * dim),
                            brow.add(3 * dim),
                            dim,
                        );
                        orow[j - jb] = finish(i, j, d[0]);
                        orow[j + 1 - jb] = finish(i, j + 1, d[1]);
                        orow[j + 2 - jb] = finish(i, j + 2, d[2]);
                        orow[j + 3 - jb] = finish(i, j + 3, d[3]);
                        j += 4;
                    }
                }
                while j < jend {
                    let d = dot(ai, bp.add(j * ldb), dim);
                    orow[j - jb] = finish(i, j, d);
                    j += 1;
                }
            }
        }
    }
}

/// NEON kernels (`aarch64`). 2 × f64 per vector register; FMA via
/// `vfmaq_f64`. Same fixed-layout rules as the AVX2 module.
#[cfg(target_arch = "aarch64")]
pub(crate) mod neon {
    use core::arch::aarch64::*;

    /// Unrolled dot product: two 2-lane FMA chains, fixed-order lane
    /// reduction (`vaddvq` adds lane 0 then lane 1), scalar tail last.
    ///
    /// # Safety
    /// Requires NEON and `dim` readable elements behind `a`/`b`.
    #[target_feature(enable = "neon")]
    pub unsafe fn dot(a: *const f64, b: *const f64, dim: usize) -> f64 {
        let mut acc0 = vdupq_n_f64(0.0);
        let mut acc1 = vdupq_n_f64(0.0);
        let mut k = 0;
        while k + 4 <= dim {
            acc0 = vfmaq_f64(acc0, vld1q_f64(a.add(k)), vld1q_f64(b.add(k)));
            acc1 = vfmaq_f64(acc1, vld1q_f64(a.add(k + 2)), vld1q_f64(b.add(k + 2)));
            k += 4;
        }
        if k + 2 <= dim {
            acc0 = vfmaq_f64(acc0, vld1q_f64(a.add(k)), vld1q_f64(b.add(k)));
            k += 2;
        }
        let mut s = vaddvq_f64(vaddq_f64(acc0, acc1));
        while k < dim {
            s += *a.add(k) * *b.add(k);
            k += 1;
        }
        s
    }

    /// Panel kernel: one `A` row against four `B` rows, one 2-lane FMA
    /// accumulator per `B` row.
    ///
    /// # Safety
    /// Requires NEON and `dim` readable elements behind every pointer.
    #[target_feature(enable = "neon")]
    #[allow(clippy::too_many_arguments)] // mirrors the scalar dot4 operands
    pub unsafe fn dot4(
        a: *const f64,
        b0: *const f64,
        b1: *const f64,
        b2: *const f64,
        b3: *const f64,
        dim: usize,
    ) -> [f64; 4] {
        let mut c0 = vdupq_n_f64(0.0);
        let mut c1 = vdupq_n_f64(0.0);
        let mut c2 = vdupq_n_f64(0.0);
        let mut c3 = vdupq_n_f64(0.0);
        let mut k = 0;
        while k + 2 <= dim {
            let av = vld1q_f64(a.add(k));
            c0 = vfmaq_f64(c0, av, vld1q_f64(b0.add(k)));
            c1 = vfmaq_f64(c1, av, vld1q_f64(b1.add(k)));
            c2 = vfmaq_f64(c2, av, vld1q_f64(b2.add(k)));
            c3 = vfmaq_f64(c3, av, vld1q_f64(b3.add(k)));
            k += 2;
        }
        let mut out = [
            vaddvq_f64(c0),
            vaddvq_f64(c1),
            vaddvq_f64(c2),
            vaddvq_f64(c3),
        ];
        if k < dim {
            let av = *a.add(k);
            out[0] += av * *b0.add(k);
            out[1] += av * *b1.add(k);
            out[2] += av * *b2.add(k);
            out[3] += av * *b3.add(k);
        }
        out
    }

    /// Fused `y += alpha * x`.
    ///
    /// # Safety
    /// Requires NEON; slice lengths must match (caller asserts).
    #[target_feature(enable = "neon")]
    pub unsafe fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        let n = x.len();
        let av = vdupq_n_f64(alpha);
        let (xp, yp) = (x.as_ptr(), y.as_mut_ptr());
        let mut k = 0;
        while k + 2 <= n {
            vst1q_f64(
                yp.add(k),
                vfmaq_f64(vld1q_f64(yp.add(k)), av, vld1q_f64(xp.add(k))),
            );
            k += 2;
        }
        if k < n {
            *yp.add(k) = alpha.mul_add(*xp.add(k), *yp.add(k));
        }
    }

    /// The full tiled `A·Bᵀ` panel driver in one NEON region; tiling
    /// structure mirrors the scalar driver in `gemm.rs` exactly.
    ///
    /// # Safety
    /// Requires NEON. The caller must have validated the shapes
    /// (`gemm::panel_driver_with` asserts before dispatching here).
    #[target_feature(enable = "neon")]
    #[allow(clippy::too_many_arguments)] // BLAS-style panel signature
    pub unsafe fn panel<F>(
        a: &[f64],
        ma: usize,
        lda: usize,
        b: &[f64],
        nb: usize,
        ldb: usize,
        dim: usize,
        out: &mut [f64],
        ldc: usize,
        tile: usize,
        finish: F,
    ) where
        F: Fn(usize, usize, f64) -> f64 + Copy,
    {
        let contiguous_b = ldb == dim;
        let (ap, bp) = (a.as_ptr(), b.as_ptr());
        for jb in (0..nb).step_by(tile) {
            let jend = (jb + tile).min(nb);
            for i in 0..ma {
                let ai = ap.add(i * lda);
                let orow = &mut out[i * ldc + jb..i * ldc + jend];
                let mut j = jb;
                if contiguous_b {
                    while j + 4 <= jend {
                        let brow = bp.add(j * dim);
                        let d = dot4(
                            ai,
                            brow,
                            brow.add(dim),
                            brow.add(2 * dim),
                            brow.add(3 * dim),
                            dim,
                        );
                        orow[j - jb] = finish(i, j, d[0]);
                        orow[j + 1 - jb] = finish(i, j + 1, d[1]);
                        orow[j + 2 - jb] = finish(i, j + 2, d[2]);
                        orow[j + 3 - jb] = finish(i, j + 3, d[3]);
                        j += 4;
                    }
                }
                while j < jend {
                    let d = dot(ai, bp.add(j * ldb), dim);
                    orow[j - jb] = finish(i, j, d);
                    j += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_is_always_available() {
        assert!(KernelBackend::Scalar.is_available());
        assert!(KernelBackend::all_available().contains(&KernelBackend::Scalar));
        assert_eq!(KernelBackend::all_available()[0], KernelBackend::Scalar);
    }

    #[test]
    fn detect_best_is_available() {
        assert!(KernelBackend::detect_best().is_available());
    }

    #[test]
    fn env_policy() {
        let best = KernelBackend::detect_best();
        assert_eq!(KernelBackend::from_env_value("", best), Ok(best));
        assert_eq!(KernelBackend::from_env_value("auto", best), Ok(best));
        assert_eq!(KernelBackend::from_env_value(" AUTO ", best), Ok(best));
        assert_eq!(
            KernelBackend::from_env_value("scalar", best),
            Ok(KernelBackend::Scalar)
        );
        assert_eq!(
            KernelBackend::from_env_value("avx2fma", best),
            Ok(KernelBackend::Avx2Fma)
        );
        assert_eq!(
            KernelBackend::from_env_value("neon", best),
            Ok(KernelBackend::Neon)
        );
        assert!(KernelBackend::from_env_value("sse9", best).is_err());
    }

    #[test]
    fn resolved_is_stable_and_available() {
        let a = KernelBackend::resolved();
        let b = KernelBackend::resolved();
        assert_eq!(a, b);
        assert!(a.is_available());
    }

    #[test]
    fn labels_round_trip() {
        for be in [
            KernelBackend::Scalar,
            KernelBackend::Avx2Fma,
            KernelBackend::Neon,
        ] {
            assert_eq!(
                KernelBackend::from_env_value(be.as_str(), KernelBackend::Scalar),
                Ok(be)
            );
        }
    }

    #[test]
    fn dispatched_dot_matches_scalar_within_tolerance() {
        for dim in [0usize, 1, 2, 3, 4, 7, 8, 15, 63, 64, 65] {
            let a: Vec<f64> = (0..dim).map(|i| (i as f64 * 0.37).sin()).collect();
            let b: Vec<f64> = (0..dim).map(|i| (i as f64 * 0.61).cos()).collect();
            let want = dot(KernelBackend::Scalar, &a, &b, dim);
            for be in KernelBackend::all_available() {
                let got = dot(be, &a, &b, dim);
                assert!(
                    (got - want).abs() <= 1e-12,
                    "{} dim={dim}: {got} vs {want}",
                    be.as_str()
                );
            }
        }
    }

    #[test]
    fn dispatched_axpy_matches_scalar_within_tolerance() {
        for n in [0usize, 1, 2, 3, 5, 8, 17, 64, 65] {
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.23).sin()).collect();
            let base: Vec<f64> = (0..n).map(|i| (i as f64 * 0.71).cos()).collect();
            let mut want = base.clone();
            axpy(KernelBackend::Scalar, 1.75, &x, &mut want);
            for be in KernelBackend::all_available() {
                let mut got = base.clone();
                axpy(be, 1.75, &x, &mut got);
                for (g, w) in got.iter().zip(&want) {
                    assert!((g - w).abs() <= 1e-12, "{} n={n}", be.as_str());
                }
            }
        }
    }
}
