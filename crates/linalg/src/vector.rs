//! Free-standing vector kernels shared by the dense and sparse paths.
//!
//! These are the innermost loops of the whole system (kernel evaluation,
//! Lanczos, K-means all bottom out here), so they operate on plain slices
//! and avoid allocation.
//!
//! [`dot`], [`norm2`], and [`axpy`] dispatch to the process kernel
//! backend (see [`crate::simd`]): the scalar arm of [`dot`] is the same
//! unrolled kernel the gemm panel drivers use for single rows, so there
//! is exactly one scalar summation order in the tree — a pair's inner
//! product agrees bitwise whether it came through `vector::dot` or a
//! gemm panel on the same backend.

use crate::simd::{self, KernelBackend};

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    simd::dot(KernelBackend::resolved(), a, b, a.len())
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean distance between two equal-length slices.
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "sq_dist: length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance between two equal-length slices.
#[inline]
pub fn dist(a: &[f64], b: &[f64]) -> f64 {
    sq_dist(a, b).sqrt()
}

/// `y += alpha * x` (BLAS `axpy`).
///
/// Elementwise, so every backend touches `y[i]` exactly once; the SIMD
/// backends fuse the multiply-add where the scalar path rounds twice.
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    simd::axpy(KernelBackend::resolved(), alpha, x, y);
}

/// Scale a vector in place: `x *= alpha`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Normalize `x` to unit L2 norm in place.
///
/// Returns the original norm. A zero vector is left untouched and `0.0`
/// is returned (the caller decides how to handle degenerate directions).
#[inline]
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm2(x);
    if n > 0.0 {
        scale(1.0 / n, x);
    }
    n
}

/// Remove from `v` its projection onto the unit-norm vector `q`
/// (one Gram–Schmidt step): `v -= (q·v) q`.
#[inline]
pub fn orthogonalize_against(q: &[f64], v: &mut [f64]) {
    let c = dot(q, v);
    axpy(-c, q, v);
}

/// Stable hypotenuse `sqrt(a² + b²)` without intermediate overflow,
/// as used inside the QL eigensolver.
#[inline]
pub fn hypot(a: f64, b: f64) -> f64 {
    let (a, b) = (a.abs(), b.abs());
    let (hi, lo) = if a > b { (a, b) } else { (b, a) };
    if hi == 0.0 {
        return 0.0;
    }
    let r = lo / hi;
    hi * (1.0 + r * r).sqrt()
}

/// Arithmetic mean of a set of equal-length rows, written into `out`.
///
/// # Panics
/// Panics if `rows` is empty or any row length differs from `out`.
pub fn mean_of(rows: &[&[f64]], out: &mut [f64]) {
    assert!(!rows.is_empty(), "mean_of: empty row set");
    out.fill(0.0);
    for r in rows {
        axpy(1.0, r, out);
    }
    scale(1.0 / rows.len() as f64, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn norm_and_dist() {
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(dist(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(sq_dist(&[1.0, 1.0], &[2.0, 2.0]), 2.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn normalize_unit_norm() {
        let mut x = vec![3.0, 4.0];
        let n = normalize(&mut x);
        assert_eq!(n, 5.0);
        assert!((norm2(&x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_zero_vector_untouched() {
        let mut x = vec![0.0, 0.0];
        assert_eq!(normalize(&mut x), 0.0);
        assert_eq!(x, vec![0.0, 0.0]);
    }

    #[test]
    fn orthogonalize_removes_component() {
        let q = [1.0, 0.0];
        let mut v = vec![3.0, 7.0];
        orthogonalize_against(&q, &mut v);
        assert!(dot(&q, &v).abs() < 1e-12);
        assert_eq!(v[1], 7.0);
    }

    #[test]
    fn hypot_matches_naive_in_safe_range() {
        assert!((hypot(3.0, 4.0) - 5.0).abs() < 1e-12);
        assert_eq!(hypot(0.0, 0.0), 0.0);
        // No overflow where naive sqrt(a^2+b^2) would overflow.
        let h = hypot(1e200, 1e200);
        assert!(h.is_finite() && h > 1e200);
    }

    #[test]
    fn mean_of_rows() {
        let a = [0.0, 2.0];
        let b = [4.0, 6.0];
        let mut out = vec![0.0; 2];
        mean_of(&[&a, &b], &mut out);
        assert_eq!(out, vec![2.0, 4.0]);
    }
}
