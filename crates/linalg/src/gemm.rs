//! Blocked dense micro-kernels over flat row-major buffers.
//!
//! The hot O(N²) loops of the pipeline — Gram blocks and the K-means
//! assignment step — are pairwise operations between two point sets.
//! Evaluated one pair at a time they are bandwidth- and ILP-bound:
//! every squared distance walks both operands once and the summation is
//! a single serial dependency chain.
//!
//! This module restructures them as a dense `C ← A·Bᵀ` micro-kernel
//! over cache-sized tiles of rows, with squared distances recovered by
//! the norm expansion
//!
//! ```text
//! ‖x − y‖² = ‖x‖² + ‖y‖² − 2⟨x, y⟩
//! ```
//!
//! so each loaded tile of `B` is reused against a whole tile of `A`
//! rows, and the inner kernel keeps several independent accumulator
//! chains in flight (4 output columns × 2 unrolled depth steps), which
//! is what lets the compiler schedule the FMAs in parallel instead of
//! serializing on one running sum.
//!
//! Numerics: the expansion is algebraically exact but not bitwise equal
//! to the direct `Σ (xᵢ−yᵢ)²` form — cancellation between `‖x‖²+‖y‖²`
//! and `2⟨x,y⟩` can leave values off by a few ULPs of the norms, and
//! for `x ≈ y` can even produce a tiny *negative* result. Every driver
//! here therefore clamps distances at zero. Callers that need bitwise
//! agreement with the scalar path (tiny inputs where the difference is
//! observable relative to setup cost) should stay on the scalar path;
//! see `dasc_kernel::TILED_MIN_POINTS` for where the kernel layer draws
//! that line.
//!
//! Everything is deterministic *within a kernel backend*: a given
//! output entry is always computed by the same instruction sequence,
//! independent of tiling position or thread count, so parallel drivers
//! chunking over row panels reproduce the single-threaded result bit
//! for bit. Across backends the guarantee weakens to a tolerance:
//! the SIMD kernels (see [`crate::simd`]) fuse each multiply-add into a
//! single rounding step (FMA) and reduce 4- or 2-wide lanes in a fixed
//! but *different* order than the scalar accumulator chains, so the
//! same inner product can differ from the scalar result by a few ULPs.
//! `DASC_KERNEL=scalar` pins the process to the scalar kernels, whose
//! instruction sequences are unchanged from the pre-SIMD tree.
//!
//! Every public driver here resolves the process backend once
//! ([`KernelBackend::resolved`]); the `_with` variants take an explicit
//! backend for benchmarks and equivalence tests.

use crate::points::FlatPoints;
use crate::simd::{self, KernelBackend};

/// Rows of `B` processed per cache tile by the panel drivers.
///
/// 128 rows × 64 dims × 8 bytes = 64 KiB worst-case — comfortably L2
/// resident alongside the `A` row being streamed, and big enough that
/// tile-edge remainders are rare for realistic bucket sizes.
pub const GEMM_TILE_ROWS: usize = 128;

/// Squared L2 norm of every row: `out[i] = ⟨aᵢ, aᵢ⟩`.
///
/// Uses the same dot kernel as the panel drivers' remainder path so
/// that a row's norm and its self-inner-product agree bitwise wherever
/// both are computed with the resolved backend's single-row summation
/// order.
pub fn row_sq_norms(points: &FlatPoints) -> Vec<f64> {
    row_sq_norms_with(KernelBackend::resolved(), points)
}

/// [`row_sq_norms`] on an explicit kernel backend.
pub fn row_sq_norms_with(backend: KernelBackend, points: &FlatPoints) -> Vec<f64> {
    let dim = points.dim();
    points
        .iter()
        .map(|r| simd::dot(backend, r, r, dim))
        .collect()
}

/// [`row_sq_norms`] over a raw row-major buffer.
///
/// # Panics
/// Panics if `data.len()` is not a multiple of `dim` (for `dim > 0`).
pub fn row_sq_norms_flat(data: &[f64], dim: usize) -> Vec<f64> {
    row_sq_norms_flat_with(KernelBackend::resolved(), data, dim)
}

/// [`row_sq_norms_flat`] on an explicit kernel backend.
///
/// # Panics
/// Panics if `data.len()` is not a multiple of `dim` (for `dim > 0`).
pub fn row_sq_norms_flat_with(backend: KernelBackend, data: &[f64], dim: usize) -> Vec<f64> {
    if dim == 0 {
        return Vec::new();
    }
    assert_eq!(data.len() % dim, 0, "row_sq_norms: ragged buffer");
    data.chunks_exact(dim)
        .map(|r| simd::dot(backend, r, r, dim))
        .collect()
}

/// Dense `C ← A·Bᵀ` panel: `out[i·ldc + j] = ⟨aᵢ, bⱼ⟩` for
/// `i < ma`, `j < nb`, with `A` and `B` row-major at stride `dim`.
///
/// `ldc` is the output row stride, which lets callers write a panel
/// directly into a window of a larger matrix.
///
/// # Panics
/// Panics if the input or output buffers are too small for the
/// requested shape, or `ldc < nb`.
pub fn abt_into(
    a: &[f64],
    ma: usize,
    b: &[f64],
    nb: usize,
    dim: usize,
    out: &mut [f64],
    ldc: usize,
) {
    abt_into_with(KernelBackend::resolved(), a, ma, b, nb, dim, out, ldc);
}

/// [`abt_into`] on an explicit kernel backend.
///
/// # Panics
/// Panics under the same shape conditions as [`abt_into`].
#[allow(clippy::too_many_arguments)] // BLAS-style panel signature: shapes travel with buffers
pub fn abt_into_with(
    backend: KernelBackend,
    a: &[f64],
    ma: usize,
    b: &[f64],
    nb: usize,
    dim: usize,
    out: &mut [f64],
    ldc: usize,
) {
    panel_driver_with(
        backend,
        a,
        ma,
        dim,
        b,
        nb,
        dim,
        dim,
        out,
        ldc,
        |_, _, dot| dot,
    );
}

/// [`abt_into`] with independent row strides for `A` and `B`: each
/// inner product runs over the first `dim` entries of rows laid out at
/// stride `lda`/`ldb`. This is what lets the eigensolver's blocked
/// back-transform stream packed reflector panels against eigenvector
/// rows embedded in a wider matrix without copying either side.
///
/// # Panics
/// Panics if `lda`/`ldb` are below `dim`, the buffers are too small for
/// the requested shape, or `ldc < nb`.
#[allow(clippy::too_many_arguments)] // BLAS-style panel signature: shapes travel with buffers
pub fn abt_strided_into(
    a: &[f64],
    ma: usize,
    lda: usize,
    b: &[f64],
    nb: usize,
    ldb: usize,
    dim: usize,
    out: &mut [f64],
    ldc: usize,
) {
    abt_strided_into_with(
        KernelBackend::resolved(),
        a,
        ma,
        lda,
        b,
        nb,
        ldb,
        dim,
        out,
        ldc,
    );
}

/// [`abt_strided_into`] on an explicit kernel backend.
///
/// # Panics
/// Panics under the same shape conditions as [`abt_strided_into`].
#[allow(clippy::too_many_arguments)] // BLAS-style panel signature: shapes travel with buffers
pub fn abt_strided_into_with(
    backend: KernelBackend,
    a: &[f64],
    ma: usize,
    lda: usize,
    b: &[f64],
    nb: usize,
    ldb: usize,
    dim: usize,
    out: &mut [f64],
    ldc: usize,
) {
    panel_driver_with(
        backend,
        a,
        ma,
        lda,
        b,
        nb,
        ldb,
        dim,
        out,
        ldc,
        |_, _, dot| dot,
    );
}

/// Fused pairwise squared distances:
/// `out[i·ldc + j] = max(0, ‖aᵢ‖² + ‖bⱼ‖² − 2⟨aᵢ, bⱼ⟩)`.
///
/// `a_norms`/`b_norms` are the rows' squared norms (see
/// [`row_sq_norms`]); hoisting them out of the inner kernel is what
/// turns the distance computation into a pure matmul. Tiny negative
/// results of the floating-point cancellation are clamped to zero so
/// downstream `sqrt`/`exp` maps never see an out-of-domain value.
///
/// # Panics
/// Panics if norm slices don't match the row counts, buffers are too
/// small, or `ldc < nb`.
#[allow(clippy::too_many_arguments)] // BLAS-style panel signature: shapes travel with buffers
pub fn sq_dists_into(
    a: &[f64],
    ma: usize,
    a_norms: &[f64],
    b: &[f64],
    nb: usize,
    b_norms: &[f64],
    dim: usize,
    out: &mut [f64],
    ldc: usize,
) {
    sq_dists_into_with(
        KernelBackend::resolved(),
        a,
        ma,
        a_norms,
        b,
        nb,
        b_norms,
        dim,
        out,
        ldc,
    );
}

/// [`sq_dists_into`] on an explicit kernel backend.
///
/// # Panics
/// Panics under the same shape conditions as [`sq_dists_into`].
#[allow(clippy::too_many_arguments)] // BLAS-style panel signature: shapes travel with buffers
pub fn sq_dists_into_with(
    backend: KernelBackend,
    a: &[f64],
    ma: usize,
    a_norms: &[f64],
    b: &[f64],
    nb: usize,
    b_norms: &[f64],
    dim: usize,
    out: &mut [f64],
    ldc: usize,
) {
    assert_eq!(a_norms.len(), ma, "sq_dists: a_norms length mismatch");
    assert_eq!(b_norms.len(), nb, "sq_dists: b_norms length mismatch");
    panel_driver_with(
        backend,
        a,
        ma,
        dim,
        b,
        nb,
        dim,
        dim,
        out,
        ldc,
        |i, j, dot| (a_norms[i] + b_norms[j] - 2.0 * dot).max(0.0),
    );
}

/// Convenience tile driver: the full `ma × nb` squared-distance matrix
/// between two flat point sets, computing the row norms itself.
///
/// Returns a flat row-major buffer of length `a.len() * b.len()`.
///
/// # Panics
/// Panics if the two sets differ in dimension (unless one is empty).
pub fn pairwise_sq_dists(a: &FlatPoints, b: &FlatPoints) -> Vec<f64> {
    let (ma, nb) = (a.len(), b.len());
    if ma == 0 || nb == 0 {
        return Vec::new();
    }
    assert_eq!(a.dim(), b.dim(), "pairwise_sq_dists: dimension mismatch");
    let a_norms = row_sq_norms(a);
    let b_norms = row_sq_norms(b);
    let mut out = vec![0.0; ma * nb];
    sq_dists_into(
        a.as_slice(),
        ma,
        &a_norms,
        b.as_slice(),
        nb,
        &b_norms,
        a.dim(),
        &mut out,
        nb,
    );
    out
}

/// Shared tiled driver: validate the panel shapes once, then dispatch
/// the tile loop to the requested backend's kernels.
///
/// The `finish` closure is monomorphized into the kernel, so the fused
/// distance variant pays nothing over the raw matmul.
#[inline]
#[allow(clippy::too_many_arguments)] // BLAS-style panel signature: shapes travel with buffers
fn panel_driver_with<F>(
    backend: KernelBackend,
    a: &[f64],
    ma: usize,
    lda: usize,
    b: &[f64],
    nb: usize,
    ldb: usize,
    dim: usize,
    out: &mut [f64],
    ldc: usize,
    finish: F,
) where
    F: Fn(usize, usize, f64) -> f64 + Copy,
{
    if ma == 0 || nb == 0 {
        return;
    }
    assert!(lda >= dim && ldb >= dim, "gemm: input stride below depth");
    assert!(a.len() >= (ma - 1) * lda + dim, "gemm: A buffer too small");
    assert!(b.len() >= (nb - 1) * ldb + dim, "gemm: B buffer too small");
    assert!(ldc >= nb, "gemm: output stride below panel width");
    assert!(
        out.len() >= (ma - 1) * ldc + nb,
        "gemm: output buffer too small"
    );
    match backend {
        KernelBackend::Scalar => {
            panel_scalar(a, ma, lda, b, nb, ldb, dim, out, ldc, finish);
        }
        KernelBackend::Avx2Fma => {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: the backend is only resolvable/constructible after
            // `is_available` confirmed AVX2+FMA; shapes validated above.
            unsafe {
                simd::avx2::panel(
                    a,
                    ma,
                    lda,
                    b,
                    nb,
                    ldb,
                    dim,
                    out,
                    ldc,
                    GEMM_TILE_ROWS,
                    finish,
                );
            }
            #[cfg(not(target_arch = "x86_64"))]
            panel_scalar(a, ma, lda, b, nb, ldb, dim, out, ldc, finish);
        }
        KernelBackend::Neon => {
            #[cfg(target_arch = "aarch64")]
            // SAFETY: as above, with NEON confirmed at resolution time.
            unsafe {
                simd::neon::panel(
                    a,
                    ma,
                    lda,
                    b,
                    nb,
                    ldb,
                    dim,
                    out,
                    ldc,
                    GEMM_TILE_ROWS,
                    finish,
                );
            }
            #[cfg(not(target_arch = "aarch64"))]
            panel_scalar(a, ma, lda, b, nb, ldb, dim, out, ldc, finish);
        }
    }
}

/// The scalar tile loop, byte-for-byte the pre-SIMD driver: this is
/// what `DASC_KERNEL=scalar` runs and what the SIMD panels are tested
/// against.
#[inline]
#[allow(clippy::too_many_arguments)] // BLAS-style panel signature: shapes travel with buffers
fn panel_scalar<F>(
    a: &[f64],
    ma: usize,
    lda: usize,
    b: &[f64],
    nb: usize,
    ldb: usize,
    dim: usize,
    out: &mut [f64],
    ldc: usize,
    finish: F,
) where
    F: Fn(usize, usize, f64) -> f64 + Copy,
{
    // The 4-deep column kernel needs four contiguous B rows; strided B
    // panels fall back to the single-row kernel, which is still 4-way
    // unrolled over the depth dimension.
    let contiguous_b = ldb == dim;
    for jb in (0..nb).step_by(GEMM_TILE_ROWS) {
        let jend = (jb + GEMM_TILE_ROWS).min(nb);
        for i in 0..ma {
            let ai = &a[i * lda..i * lda + dim];
            let orow = &mut out[i * ldc + jb..i * ldc + jend];
            let mut j = jb;
            if contiguous_b {
                while j + 4 <= jend {
                    let d = dot4(ai, &b[j * dim..(j + 4) * dim], dim);
                    orow[j - jb] = finish(i, j, d[0]);
                    orow[j + 1 - jb] = finish(i, j + 1, d[1]);
                    orow[j + 2 - jb] = finish(i, j + 2, d[2]);
                    orow[j + 3 - jb] = finish(i, j + 3, d[3]);
                    j += 4;
                }
            }
            while j < jend {
                let d = dot1(ai, &b[j * ldb..j * ldb + dim], dim);
                orow[j - jb] = finish(i, j, d);
                j += 1;
            }
        }
    }
}

/// Register-blocked inner kernel: one `A` row against four consecutive
/// `B` rows. Eight independent accumulators (4 columns × 2 unrolled
/// depth steps) keep the FMA pipeline busy; the `A` element is loaded
/// once per depth step and reused across all four columns.
#[inline(always)]
fn dot4(a: &[f64], b4: &[f64], dim: usize) -> [f64; 4] {
    debug_assert!(a.len() == dim && b4.len() == 4 * dim);
    let (b0, rest) = b4.split_at(dim);
    let (b1, rest) = rest.split_at(dim);
    let (b2, b3) = rest.split_at(dim);
    let mut s = [0.0f64; 8];
    let mut k = 0;
    while k + 2 <= dim {
        let (a0, a1) = (a[k], a[k + 1]);
        s[0] += a0 * b0[k];
        s[4] += a1 * b0[k + 1];
        s[1] += a0 * b1[k];
        s[5] += a1 * b1[k + 1];
        s[2] += a0 * b2[k];
        s[6] += a1 * b2[k + 1];
        s[3] += a0 * b3[k];
        s[7] += a1 * b3[k + 1];
        k += 2;
    }
    if k < dim {
        let a0 = a[k];
        s[0] += a0 * b0[k];
        s[1] += a0 * b1[k];
        s[2] += a0 * b2[k];
        s[3] += a0 * b3[k];
    }
    [s[0] + s[4], s[1] + s[5], s[2] + s[6], s[3] + s[7]]
}

/// Single-row remainder kernel: four accumulator chains over the depth
/// dimension, reduced pairwise so the result is independent of where in
/// a tile the row lands. Crate-visible so the dense matvec and the
/// eigensolver's reflector loops share the exact summation order.
#[inline(always)]
pub(crate) fn dot1(a: &[f64], b: &[f64], dim: usize) -> f64 {
    debug_assert!(a.len() == dim && b.len() == dim);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let mut k = 0;
    while k + 4 <= dim {
        s0 += a[k] * b[k];
        s1 += a[k + 1] * b[k + 1];
        s2 += a[k + 2] * b[k + 2];
        s3 += a[k + 3] * b[k + 3];
        k += 4;
    }
    while k < dim {
        s0 += a[k] * b[k];
        k += 1;
    }
    (s0 + s1) + (s2 + s3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector;

    /// Deterministic pseudo-random point set.
    fn points(n: usize, dim: usize, salt: u64) -> FlatPoints {
        let data: Vec<f64> = (0..n * dim)
            .map(|i| {
                let x = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt;
                (x % 1000) as f64 / 250.0 - 2.0
            })
            .collect();
        FlatPoints::from_flat(data, dim)
    }

    #[test]
    fn abt_matches_naive_dot() {
        for (ma, nb, dim) in [(1, 1, 1), (3, 5, 2), (7, 9, 3), (13, 6, 5), (130, 131, 7)] {
            let a = points(ma, dim, 1);
            let b = points(nb, dim, 2);
            let mut out = vec![0.0; ma * nb];
            abt_into(a.as_slice(), ma, b.as_slice(), nb, dim, &mut out, nb);
            for i in 0..ma {
                for j in 0..nb {
                    let want = vector::dot(a.row(i), b.row(j));
                    assert!(
                        (out[i * nb + j] - want).abs() < 1e-12,
                        "({i},{j}) at {ma}x{nb}x{dim}: {} vs {want}",
                        out[i * nb + j]
                    );
                }
            }
        }
    }

    #[test]
    fn sq_dists_match_scalar_within_tolerance() {
        for (ma, nb, dim) in [(1, 4, 2), (5, 5, 3), (17, 33, 4), (129, 7, 6)] {
            let a = points(ma, dim, 3);
            let b = points(nb, dim, 4);
            let out = pairwise_sq_dists(&a, &b);
            for i in 0..ma {
                for j in 0..nb {
                    let want = vector::sq_dist(a.row(i), b.row(j));
                    assert!(
                        (out[i * nb + j] - want).abs() < 1e-12,
                        "({i},{j}): {} vs {want}",
                        out[i * nb + j]
                    );
                }
            }
        }
    }

    #[test]
    fn self_distances_clamped_non_negative() {
        // Identical rows: the expansion cancels to ±ULP noise; the clamp
        // must pin every self-distance at exactly 0 or a non-negative
        // residue, never a negative number.
        let a = points(37, 5, 9);
        let out = pairwise_sq_dists(&a, &a);
        for (idx, &v) in out.iter().enumerate() {
            assert!(v >= 0.0, "negative distance at {idx}: {v}");
        }
        for i in 0..37 {
            assert!(out[i * 37 + i] < 1e-12, "self distance {}", out[i * 37 + i]);
        }
    }

    #[test]
    fn strided_output_leaves_margin_untouched() {
        // Write a 3×4 panel into a 3×10 window at column offset 0 with
        // ldc 10; columns 4..10 must keep their sentinel.
        let a = points(3, 2, 5);
        let b = points(4, 2, 6);
        let an = row_sq_norms(&a);
        let bn = row_sq_norms(&b);
        let mut out = vec![-7.0; 3 * 10];
        sq_dists_into(a.as_slice(), 3, &an, b.as_slice(), 4, &bn, 2, &mut out, 10);
        for i in 0..3 {
            for j in 0..4 {
                assert!(out[i * 10 + j] >= 0.0);
            }
            for j in 4..10 {
                if i * 10 + j < out.len() {
                    assert_eq!(out[i * 10 + j], -7.0, "margin clobbered at ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn strided_panels_match_contiguous() {
        // Rows embedded in wider buffers (stride > dim) must produce the
        // same inner products as densely packed rows.
        let (ma, nb, dim, lda, ldb) = (6, 9, 5, 8, 11);
        let a = points(ma, lda, 21);
        let b = points(nb, ldb, 22);
        let packed_a: Vec<f64> = (0..ma).flat_map(|i| a.row(i)[..dim].to_vec()).collect();
        let packed_b: Vec<f64> = (0..nb).flat_map(|j| b.row(j)[..dim].to_vec()).collect();
        let mut want = vec![0.0; ma * nb];
        abt_into(&packed_a, ma, &packed_b, nb, dim, &mut want, nb);
        let mut got = vec![0.0; ma * nb];
        abt_strided_into(
            a.as_slice(),
            ma,
            lda,
            b.as_slice(),
            nb,
            ldb,
            dim,
            &mut got,
            nb,
        );
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert!((g - w).abs() < 1e-12, "entry {i}: {g} vs {w}");
        }
    }

    #[test]
    fn empty_inputs_are_noops() {
        let a = points(3, 2, 7);
        let empty = FlatPoints::from_rows(&[]);
        assert!(pairwise_sq_dists(&a, &empty).is_empty());
        assert!(pairwise_sq_dists(&empty, &a).is_empty());
        let mut out: Vec<f64> = Vec::new();
        abt_into(&[], 0, &[], 0, 3, &mut out, 0);
    }

    #[test]
    fn row_norms_match_dot() {
        let a = points(11, 3, 8);
        let norms = row_sq_norms(&a);
        for (i, &ni) in norms.iter().enumerate() {
            assert!((ni - vector::dot(a.row(i), a.row(i))).abs() < 1e-12);
        }
        assert_eq!(
            row_sq_norms_flat(a.as_slice(), 3),
            norms,
            "flat variant must agree"
        );
    }

    #[test]
    fn zero_dim_points() {
        let a = FlatPoints::from_flat(Vec::new(), 0);
        assert!(row_sq_norms(&a).is_empty());
        assert!(row_sq_norms_flat(&[], 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "output stride")]
    fn small_ldc_panics() {
        let a = points(2, 2, 1);
        let mut out = vec![0.0; 4];
        abt_into(a.as_slice(), 2, a.as_slice(), 2, 2, &mut out, 1);
    }
}
