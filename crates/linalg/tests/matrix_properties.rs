//! Property-based tests over the dense-matrix algebra (proptest).

use dasc_linalg::{qr, symmetric_eigen, Cholesky, Matrix};
use proptest::prelude::*;

/// Strategy: an `n×n` matrix with entries in [-1, 1].
fn square_matrix(max_n: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_n).prop_flat_map(|n| {
        prop::collection::vec(-1.0f64..1.0, n * n)
            .prop_map(move |data| Matrix::from_vec(n, n, data))
    })
}

fn symmetrize(a: &Matrix) -> Matrix {
    let n = a.nrows();
    Matrix::from_fn(n, n, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn transpose_is_involutive(a in square_matrix(8)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_identity_neutral(a in square_matrix(8)) {
        let n = a.nrows();
        let i = Matrix::identity(n);
        prop_assert!(a.matmul(&i).max_abs_diff(&a) < 1e-12);
        prop_assert!(i.matmul(&a).max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn matmul_transpose_identity(a in square_matrix(6), b in square_matrix(6)) {
        prop_assume!(a.nrows() == b.nrows());
        // (AB)ᵀ = BᵀAᵀ.
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-10);
    }

    #[test]
    fn frobenius_is_submultiplicative(a in square_matrix(6), b in square_matrix(6)) {
        prop_assume!(a.nrows() == b.nrows());
        let prod = a.matmul(&b).frobenius_norm();
        prop_assert!(prod <= a.frobenius_norm() * b.frobenius_norm() + 1e-9);
    }

    #[test]
    fn eigendecomposition_reconstructs_symmetric(a in square_matrix(7)) {
        let s = symmetrize(&a);
        let n = s.nrows();
        let eig = symmetric_eigen(&s);
        let mut lam = Matrix::zeros(n, n);
        for i in 0..n {
            lam[(i, i)] = eig.eigenvalues[i];
        }
        let q = eig.eigenvectors_full();
        let rec = q.matmul(&lam).matmul(&q.transpose());
        prop_assert!(rec.max_abs_diff(&s) < 1e-8);
        // Trace preserved.
        let trace: f64 = (0..n).map(|i| s[(i, i)]).sum();
        let sum: f64 = eig.eigenvalues.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-8);
        // Eigenvalues sorted ascending.
        prop_assert!(eig.eigenvalues.windows(2).all(|w| w[0] <= w[1] + 1e-12));
    }

    #[test]
    fn qr_reconstructs_and_orthogonal(a in square_matrix(7)) {
        let d = qr(&a);
        prop_assert!(d.q.matmul(&d.r).max_abs_diff(&a) < 1e-9);
        let n = a.nrows();
        let g = d.q.transpose().matmul(&d.q);
        prop_assert!(g.max_abs_diff(&Matrix::identity(n)) < 1e-9);
    }

    #[test]
    fn cholesky_inverts_spd(a in square_matrix(6)) {
        // A Aᵀ + nI is SPD.
        let n = a.nrows();
        let mut spd = a.matmul(&a.transpose());
        for i in 0..n {
            spd[(i, i)] += n as f64;
        }
        let ch = Cholesky::new(&spd).expect("SPD by construction");
        let b: Vec<f64> = (0..n).map(|i| (i as f64) - 1.5).collect();
        let x = ch.solve(&b);
        let mut ax = vec![0.0; n];
        spd.matvec_into(&x, &mut ax);
        for (l, r) in ax.iter().zip(&b) {
            prop_assert!((l - r).abs() < 1e-8);
        }
        // Gram matrices of full-rank factors have positive determinant.
        prop_assert!(ch.log_det().is_finite());
    }

    #[test]
    fn row_sums_match_matvec_with_ones(a in square_matrix(8)) {
        let n = a.nrows();
        let ones = vec![1.0; n];
        let mut prod = vec![0.0; n];
        a.matvec_into(&ones, &mut prod);
        for (rs, p) in a.row_sums().iter().zip(&prod) {
            prop_assert!((rs - p).abs() < 1e-12);
        }
    }
}
