//! Property tests for the runtime-dispatched SIMD kernel backends.
//!
//! Three contracts are pinned here (see `crates/linalg/src/simd.rs`):
//!
//! 1. **Cross-backend tolerance** — every available backend agrees with
//!    the scalar kernels to ≤ 1e-12 entrywise on coordinates in
//!    `[−2, 2]` (FMA and lane reduction change summation order, so
//!    agreement is approximate by design).
//! 2. **Scalar bitwise identity** — the `DASC_KERNEL=scalar` kernels
//!    are byte-for-byte the pre-SIMD instruction sequences; reference
//!    copies of those loops live in this file and must match exactly.
//! 3. **Within-backend determinism** — a given output entry is computed
//!    by the same instruction sequence regardless of tiling position or
//!    parallel chunking, on every backend.

use dasc_linalg::simd::{self, KernelBackend};
use dasc_linalg::{gemm, Matrix};
use proptest::prelude::*;

const TOL: f64 = 1e-12;
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Ragged depths that hit every lane-remainder path: empty, below one
/// vector, odd around the 8-wide AVX2 step, and around a 64-dim row.
const RAGGED_DIMS: [usize; 5] = [0, 1, 7, 63, 65];

/// Deterministic pseudo-random coordinates in [−2, 2).
fn coords(n: usize, salt: u64) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let x = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt;
            (x % 1000) as f64 / 250.0 - 2.0
        })
        .collect()
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "shape mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// The pre-SIMD single-row kernel, copied verbatim from the seed tree's
/// `gemm::dot1`: four accumulator chains over the depth, reduced
/// `(s0 + s1) + (s2 + s3)`.
fn reference_dot1(a: &[f64], b: &[f64], dim: usize) -> f64 {
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let mut k = 0;
    while k + 4 <= dim {
        s0 += a[k] * b[k];
        s1 += a[k + 1] * b[k + 1];
        s2 += a[k + 2] * b[k + 2];
        s3 += a[k + 3] * b[k + 3];
        k += 4;
    }
    while k < dim {
        s0 += a[k] * b[k];
        k += 1;
    }
    (s0 + s1) + (s2 + s3)
}

/// The pre-SIMD 4-column kernel, copied verbatim from the seed tree's
/// `gemm::dot4`: eight accumulators, 4 columns × 2 unrolled depth steps.
fn reference_dot4(a: &[f64], b4: &[f64], dim: usize) -> [f64; 4] {
    let (b0, rest) = b4.split_at(dim);
    let (b1, rest) = rest.split_at(dim);
    let (b2, b3) = rest.split_at(dim);
    let mut s = [0.0f64; 8];
    let mut k = 0;
    while k + 2 <= dim {
        let (a0, a1) = (a[k], a[k + 1]);
        s[0] += a0 * b0[k];
        s[4] += a1 * b0[k + 1];
        s[1] += a0 * b1[k];
        s[5] += a1 * b1[k + 1];
        s[2] += a0 * b2[k];
        s[6] += a1 * b2[k + 1];
        s[3] += a0 * b3[k];
        s[7] += a1 * b3[k + 1];
        k += 2;
    }
    if k < dim {
        let a0 = a[k];
        s[0] += a0 * b0[k];
        s[1] += a0 * b1[k];
        s[2] += a0 * b2[k];
        s[3] += a0 * b3[k];
    }
    [s[0] + s[4], s[1] + s[5], s[2] + s[6], s[3] + s[7]]
}

/// The pre-SIMD axpy loop, copied verbatim from the seed tree's
/// `vector::axpy` body.
fn reference_axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

// ---------------------------------------------------------------------
// Contract 2: DASC_KERNEL=scalar is bit-identical to the pre-PR kernels.
// ---------------------------------------------------------------------

#[test]
fn scalar_dot_bitwise_matches_pre_pr_kernel() {
    for dim in [0usize, 1, 2, 3, 5, 7, 8, 16, 63, 64, 65, 130] {
        let a = coords(dim, 1);
        let b = coords(dim, 2);
        let got = simd::dot(KernelBackend::Scalar, &a, &b, dim);
        let want = reference_dot1(&a, &b, dim);
        assert!(
            got.to_bits() == want.to_bits(),
            "dim={dim}: {got:?} vs {want:?}"
        );
    }
}

#[test]
fn scalar_panel_bitwise_matches_pre_pr_kernels() {
    // abt_into on the scalar backend must reproduce the pre-PR tiling:
    // dot4 on groups of four contiguous B rows, dot1 on the remainder.
    for (ma, nb, dim) in [(1, 1, 1), (3, 5, 2), (7, 9, 3), (13, 6, 5), (130, 131, 7)] {
        let a = coords(ma * dim, 3);
        let b = coords(nb * dim, 4);
        let mut got = vec![0.0; ma * nb];
        gemm::abt_into_with(KernelBackend::Scalar, &a, ma, &b, nb, dim, &mut got, nb);
        for i in 0..ma {
            let ai = &a[i * dim..(i + 1) * dim];
            let mut j = 0;
            while j + 4 <= nb.min(gemm::GEMM_TILE_ROWS) {
                let d = reference_dot4(ai, &b[j * dim..(j + 4) * dim], dim);
                for (c, want) in d.iter().enumerate() {
                    let have = got[i * nb + j + c];
                    assert!(
                        have.to_bits() == want.to_bits(),
                        "({i},{}) {ma}x{nb}x{dim}: {have:?} vs {want:?}",
                        j + c
                    );
                }
                j += 4;
            }
            while j < nb.min(gemm::GEMM_TILE_ROWS) {
                let want = reference_dot1(ai, &b[j * dim..(j + 1) * dim], dim);
                let have = got[i * nb + j];
                assert!(
                    have.to_bits() == want.to_bits(),
                    "({i},{j}) remainder: {have:?} vs {want:?}"
                );
                j += 1;
            }
        }
    }
}

#[test]
fn scalar_axpy_bitwise_matches_pre_pr_loop() {
    for n in [0usize, 1, 3, 4, 7, 64, 65] {
        let x = coords(n, 5);
        let base = coords(n, 6);
        let mut got = base.clone();
        simd::axpy(KernelBackend::Scalar, -1.375, &x, &mut got);
        let mut want = base;
        reference_axpy(-1.375, &x, &mut want);
        for (g, w) in got.iter().zip(&want) {
            assert!(g.to_bits() == w.to_bits(), "n={n}: {g:?} vs {w:?}");
        }
    }
}

// ---------------------------------------------------------------------
// Contract 1: every available backend within 1e-12 of scalar.
// ---------------------------------------------------------------------

#[test]
fn ragged_dims_agree_across_backends() {
    for dim in RAGGED_DIMS {
        let a = coords(dim, 7);
        let b = coords(dim, 8);
        let want = simd::dot(KernelBackend::Scalar, &a, &b, dim);
        for be in KernelBackend::all_available() {
            let got = simd::dot(be, &a, &b, dim);
            assert!(
                (got - want).abs() <= TOL,
                "{} dim={dim}: {got} vs {want}",
                be.as_str()
            );
        }
    }
}

#[test]
fn sq_dists_clamp_holds_on_every_backend() {
    // Identical rows: norm-expansion cancellation can go ±ULP negative;
    // the clamp must pin every self-distance at a non-negative value on
    // scalar and SIMD backends alike.
    let (n, dim) = (37, 5);
    let a = coords(n * dim, 9);
    for be in KernelBackend::all_available() {
        let norms = gemm::row_sq_norms_flat_with(be, &a, dim);
        let mut out = vec![0.0; n * n];
        gemm::sq_dists_into_with(be, &a, n, &norms, &a, n, &norms, dim, &mut out, n);
        for (idx, &v) in out.iter().enumerate() {
            assert!(v >= 0.0, "{}: negative distance at {idx}: {v}", be.as_str());
        }
        for i in 0..n {
            assert!(out[i * n + i] <= TOL, "{}: self distance", be.as_str());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dot_agrees_across_backends(
        pool in prop::collection::vec(-2.0f64..2.0, 0..260),
        split in 0usize..130,
    ) {
        let dim = (pool.len() / 2).min(split.max(1));
        let (a, b) = (&pool[..dim], &pool[pool.len() - dim..]);
        let want = simd::dot(KernelBackend::Scalar, a, b, dim);
        for be in KernelBackend::all_available() {
            let got = simd::dot(be, a, b, dim);
            prop_assert!(
                (got - want).abs() <= TOL,
                "{} dim={dim}: {got} vs {want}", be.as_str()
            );
        }
    }

    #[test]
    fn panels_agree_across_backends(
        a_data in prop::collection::vec(-2.0f64..2.0, 0..420),
        b_data in prop::collection::vec(-2.0f64..2.0, 0..420),
        dim in 1usize..8,
    ) {
        let ma = a_data.len() / dim;
        let nb = b_data.len() / dim;
        let a = &a_data[..ma * dim];
        let b = &b_data[..nb * dim];
        let mut want = vec![0.0; ma * nb];
        gemm::abt_into_with(KernelBackend::Scalar, a, ma, b, nb, dim, &mut want, nb);
        for be in KernelBackend::all_available() {
            let mut got = vec![0.0; ma * nb];
            gemm::abt_into_with(be, a, ma, b, nb, dim, &mut got, nb);
            let diff = max_abs_diff(&want, &got);
            prop_assert!(diff <= TOL, "{} {ma}x{nb}x{dim}: {diff:e}", be.as_str());
        }
    }

    #[test]
    fn sq_dists_agree_across_backends(
        a_data in prop::collection::vec(-2.0f64..2.0, 0..420),
        b_data in prop::collection::vec(-2.0f64..2.0, 0..420),
        dim in 1usize..8,
    ) {
        let ma = a_data.len() / dim;
        let nb = b_data.len() / dim;
        let a = &a_data[..ma * dim];
        let b = &b_data[..nb * dim];
        let mut results: Vec<Vec<f64>> = Vec::new();
        for be in KernelBackend::all_available() {
            let an = gemm::row_sq_norms_flat_with(be, a, dim);
            let bn = gemm::row_sq_norms_flat_with(be, b, dim);
            let mut out = vec![0.0; ma * nb];
            gemm::sq_dists_into_with(be, a, ma, &an, b, nb, &bn, dim, &mut out, nb);
            prop_assert!(out.iter().all(|&d| d >= 0.0), "{}: clamp failed", be.as_str());
            results.push(out);
        }
        for got in &results[1..] {
            let diff = max_abs_diff(&results[0], got);
            prop_assert!(diff <= TOL, "{ma}x{nb}x{dim}: {diff:e}");
        }
    }

    #[test]
    fn strided_panels_agree_across_backends(
        data in prop::collection::vec(-2.0f64..2.0, 64..420),
        dim in 1usize..6,
    ) {
        // Strided B rows force the single-row remainder kernel on every
        // backend (the 4-column kernel needs contiguous B).
        let lda = dim + 3;
        let ma = data.len() / lda;
        let rows = &data[..ma * lda];
        let mut want = vec![0.0; ma * ma];
        gemm::abt_strided_into_with(
            KernelBackend::Scalar, rows, ma, lda, rows, ma, lda, dim, &mut want, ma,
        );
        for be in KernelBackend::all_available() {
            let mut got = vec![0.0; ma * ma];
            gemm::abt_strided_into_with(be, rows, ma, lda, rows, ma, lda, dim, &mut got, ma);
            let diff = max_abs_diff(&want, &got);
            prop_assert!(diff <= TOL, "{} {ma} rows dim={dim}: {diff:e}", be.as_str());
        }
    }

    #[test]
    fn axpy_agrees_across_backends(
        x in prop::collection::vec(-2.0f64..2.0, 0..200),
        alpha in -3.0f64..3.0,
    ) {
        let base = coords(x.len(), 11);
        let mut want = base.clone();
        simd::axpy(KernelBackend::Scalar, alpha, &x, &mut want);
        for be in KernelBackend::all_available() {
            let mut got = base.clone();
            simd::axpy(be, alpha, &x, &mut got);
            let diff = max_abs_diff(&want, &got);
            prop_assert!(diff <= TOL, "{} n={}: {diff:e}", be.as_str(), x.len());
        }
    }

    #[test]
    fn matvec_agrees_with_explicit_backend_panels(
        data in prop::collection::vec(-2.0f64..2.0, 1..420),
        dim in 1usize..8,
    ) {
        // Matrix::matvec_into dispatches to the resolved backend; it
        // must agree with the explicit scalar panel to tolerance and
        // with the resolved backend's own panel bitwise.
        let n = data.len() / dim;
        prop_assume!(n >= 1);
        let m = Matrix::from_vec(n, dim, data[..n * dim].to_vec());
        let x = coords(dim, 13);
        let mut got = vec![0.0; n];
        m.matvec_into(&x, &mut got);
        let mut scalar = vec![0.0; n];
        gemm::abt_into_with(
            KernelBackend::Scalar, &data[..n * dim], n, &x, 1, dim, &mut scalar, 1,
        );
        prop_assert!(max_abs_diff(&scalar, &got) <= TOL, "matvec vs scalar panel");
        let mut resolved = vec![0.0; n];
        gemm::abt_into_with(
            KernelBackend::resolved(), &data[..n * dim], n, &x, 1, dim, &mut resolved, 1,
        );
        for (g, w) in got.iter().zip(&resolved) {
            prop_assert!(g.to_bits() == w.to_bits(), "matvec not bitwise on resolved backend");
        }
    }

    // -----------------------------------------------------------------
    // Contract 3: within-backend determinism.
    // -----------------------------------------------------------------

    #[test]
    fn tiling_position_never_changes_bits(
        data in prop::collection::vec(-2.0f64..2.0, 64..520),
        dim in 1usize..7,
    ) {
        // Computing the full panel in one call vs row-by-row (the way
        // parallel drivers chunk output rows) must agree bitwise on
        // every backend: kernels are pure functions of (row a, row b,
        // dim), never of the tile the entry lands in.
        let n = data.len() / dim;
        let rows = &data[..n * dim];
        for be in KernelBackend::all_available() {
            let norms = gemm::row_sq_norms_flat_with(be, rows, dim);
            let mut full = vec![0.0; n * n];
            gemm::sq_dists_into_with(be, rows, n, &norms, rows, n, &norms, dim, &mut full, n);
            let mut chunked = vec![0.0; n * n];
            for i in 0..n {
                gemm::sq_dists_into_with(
                    be,
                    &rows[i * dim..(i + 1) * dim],
                    1,
                    &norms[i..i + 1],
                    rows,
                    n,
                    &norms,
                    dim,
                    &mut chunked[i * n..(i + 1) * n],
                    n,
                );
            }
            for (idx, (f, c)) in full.iter().zip(&chunked).enumerate() {
                prop_assert!(
                    f.to_bits() == c.to_bits(),
                    "{}: entry {idx} depends on tiling position", be.as_str()
                );
            }
        }
    }

    #[test]
    fn matvec_bit_stable_across_thread_counts(
        data in prop::collection::vec(-2.0f64..2.0, 64..520),
        dim in 1usize..7,
    ) {
        // The resolved backend (scalar or SIMD, depending on the
        // process's DASC_KERNEL — CI runs both) must produce the same
        // bits at every pool width.
        let n = data.len() / dim;
        let m = Matrix::from_vec(n, dim, data[..n * dim].to_vec());
        let x = coords(dim, 17);
        let mut expected = vec![0.0; n];
        dasc_pool::Pool::new(1).install(|| m.matvec_into(&x, &mut expected));
        for threads in &THREAD_COUNTS[1..] {
            let mut got = vec![0.0; n];
            dasc_pool::Pool::new(*threads).install(|| m.matvec_into(&x, &mut got));
            for (g, w) in got.iter().zip(&expected) {
                prop_assert!(
                    g.to_bits() == w.to_bits(),
                    "matvec differs at {threads} threads"
                );
            }
        }
    }
}
