//! Equivalence suite for the k-targeted dense eigensolver: the
//! factored-Householder + inverse-iteration path must land on the same
//! eigenpairs as the full `symmetric_eigen` decomposition — entrywise
//! up to column sign when the spectrum is simple, and as the same
//! invariant subspace when eigenvalues cluster or degenerate.

use dasc_linalg::{symmetric_eigen, symmetric_eigen_topk, Matrix};
use proptest::prelude::*;

/// Strategy: an `n×n` symmetric matrix with entries in [-1, 1].
fn symmetric_matrix(max_n: usize) -> impl Strategy<Value = Matrix> {
    (2..=max_n).prop_flat_map(|n| {
        prop::collection::vec(-1.0f64..1.0, n * n).prop_map(move |data| {
            let a = Matrix::from_vec(n, n, data);
            Matrix::from_fn(n, n, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]))
        })
    })
}

/// Spectral scale: the largest eigenvalue magnitude (for relative tols).
fn scale_of(eigenvalues: &[f64]) -> f64 {
    eigenvalues.iter().fold(1e-30, |m, &v| m.max(v.abs()))
}

/// Max entrywise deviation between two n×k column stacks after aligning
/// each column's sign on its largest-magnitude entry.
fn max_signed_column_diff(a: &Matrix, b: &Matrix) -> f64 {
    let (n, k) = a.shape();
    let mut worst = 0.0f64;
    for j in 0..k {
        let pivot = (0..n)
            .max_by(|&p, &q| {
                a[(p, j)]
                    .abs()
                    .partial_cmp(&a[(q, j)].abs())
                    .expect("NaN entry")
            })
            .expect("nonempty column");
        let sign = if a[(pivot, j)] * b[(pivot, j)] < 0.0 {
            -1.0
        } else {
            1.0
        };
        for i in 0..n {
            worst = worst.max((a[(i, j)] - sign * b[(i, j)]).abs());
        }
    }
    worst
}

/// `‖A v − λ v‖∞` over every returned eigenpair.
fn max_residual(a: &Matrix, eigenvalues: &[f64], vectors: &Matrix) -> f64 {
    let n = a.nrows();
    let mut worst = 0.0f64;
    for (j, &lam) in eigenvalues.iter().enumerate() {
        let v = vectors.col(j);
        let mut av = vec![0.0; n];
        a.matvec_into(&v, &mut av);
        for i in 0..n {
            worst = worst.max((av[i] - lam * v[i]).abs());
        }
    }
    worst
}

/// Max deviation of `VᵀV` from the identity.
fn orthonormality_defect(vectors: &Matrix) -> f64 {
    let k = vectors.ncols();
    let g = vectors.transpose().matmul(vectors);
    g.max_abs_diff(&Matrix::identity(k))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn topk_matches_full_dense(a in symmetric_matrix(20), k_raw in 1usize..8) {
        let n = a.nrows();
        let k = k_raw.min(n);
        let full = symmetric_eigen(&a);
        let top = symmetric_eigen_topk(&a, k);
        let scale = scale_of(&full.eigenvalues);

        // Eigenvalues agree unconditionally.
        let (want_vals, want_vecs) = full.top_k(k);
        for (got, want) in top.eigenvalues.iter().zip(&want_vals) {
            prop_assert!(
                (got - want).abs() <= 1e-9 * scale.max(1.0),
                "eigenvalue mismatch: {got} vs {want}"
            );
        }

        // Both bases solve the problem to working accuracy.
        prop_assert!(max_residual(&a, &top.eigenvalues, &top.eigenvectors) <= 1e-8 * scale.max(1.0));
        prop_assert!(orthonormality_defect(&top.eigenvectors) <= 1e-9);

        // Entrywise sign-matched agreement needs simple eigenvalues: a
        // clustered pair spans a two-dimensional eigenspace where both
        // solvers may legitimately pick different orthonormal bases.
        // Random continuous spectra are simple almost surely, so this
        // branch runs for nearly every case.
        let simple = (0..k).all(|j| {
            let i = n - 1 - j; // ascending index of target j
            let below = if i > 0 { full.eigenvalues[i] - full.eigenvalues[i - 1] } else { f64::INFINITY };
            let above = if i + 1 < n { full.eigenvalues[i + 1] - full.eigenvalues[i] } else { f64::INFINITY };
            below.min(above) > 1e-6 * scale.max(1.0)
        });
        if simple {
            let diff = max_signed_column_diff(&want_vecs, &top.eigenvectors);
            prop_assert!(diff <= 1e-9, "entrywise deviation {diff} above 1e-9");
        }
    }
}

/// Build `Q D Qᵀ` for a given spectrum, with `Q` from the eigenbasis of
/// a fixed dense symmetric matrix (deterministic, well-conditioned).
fn matrix_with_spectrum(spectrum: &[f64]) -> Matrix {
    let n = spectrum.len();
    let seed = Matrix::from_fn(n, n, |i, j| {
        let v = ((i * 37 + j * 61 + 13) % 97) as f64 / 97.0 - 0.5;
        let w = ((j * 37 + i * 61 + 13) % 97) as f64 / 97.0 - 0.5;
        0.5 * (v + w)
    });
    let q = symmetric_eigen(&seed).eigenvectors_full();
    let mut d = Matrix::zeros(n, n);
    for (i, &lam) in spectrum.iter().enumerate() {
        d[(i, i)] = lam;
    }
    q.matmul(&d).matmul(&q.transpose())
}

#[test]
fn clustered_eigenvalues_still_resolve() {
    // Top cluster at 5.0 ± 1e-5: tighter than the QL convergence window
    // is allowed to smear, wide enough to stay simple. The inverse
    // iteration's cluster orthogonalization has to keep the two vectors
    // independent.
    let spectrum = [0.1, 0.4, 0.9, 1.3, 2.0, 2.4, 3.0, 4.9999, 5.0, 5.00001];
    let a = matrix_with_spectrum(&spectrum);
    let top = symmetric_eigen_topk(&a, 3);
    assert!(max_residual(&a, &top.eigenvalues, &top.eigenvectors) < 1e-8);
    assert!(orthonormality_defect(&top.eigenvectors) < 1e-9);
    let full = symmetric_eigen(&a);
    for (got, want) in top.eigenvalues.iter().zip(full.top_k(3).0) {
        assert!((got - want).abs() < 1e-9, "{got} vs {want}");
    }
}

#[test]
fn degenerate_eigenvalues_span_the_same_subspace() {
    // An exactly repeated top eigenvalue: individual eigenvectors are
    // not unique, the invariant subspace is. Compare the spectral
    // projectors `V Vᵀ` of both solvers.
    let spectrum = [0.2, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 7.0, 7.0, 7.0];
    let a = matrix_with_spectrum(&spectrum);
    let k = 3;
    let top = symmetric_eigen_topk(&a, k);
    let (_, full_vecs) = symmetric_eigen(&a).top_k(k);
    assert!(max_residual(&a, &top.eigenvalues, &top.eigenvectors) < 1e-8);
    assert!(orthonormality_defect(&top.eigenvectors) < 1e-9);
    let p_top = top.eigenvectors.matmul(&top.eigenvectors.transpose());
    let p_full = full_vecs.matmul(&full_vecs.transpose());
    let diff = p_top.max_abs_diff(&p_full);
    assert!(diff < 1e-8, "projector deviation {diff}");
}

#[test]
fn well_separated_spectrum_matches_entrywise() {
    let spectrum = [-3.0, -1.5, -0.5, 0.25, 1.0, 2.0, 3.5, 5.0, 8.0, 13.0];
    let a = matrix_with_spectrum(&spectrum);
    for k in [1usize, 2, 4, 7] {
        let top = symmetric_eigen_topk(&a, k);
        let (_, full_vecs) = symmetric_eigen(&a).top_k(k);
        let diff = max_signed_column_diff(&full_vecs, &top.eigenvectors);
        assert!(diff <= 1e-9, "k={k}: entrywise deviation {diff}");
    }
}

#[test]
fn k_equals_n_matches_full_decomposition() {
    let spectrum = [0.3, 1.1, 2.2, 3.3, 4.4, 5.5];
    let a = matrix_with_spectrum(&spectrum);
    let n = a.nrows();
    let top = symmetric_eigen_topk(&a, n);
    let (full_vals, full_vecs) = symmetric_eigen(&a).top_k(n);
    for (got, want) in top.eigenvalues.iter().zip(&full_vals) {
        assert!((got - want).abs() < 1e-9);
    }
    assert!(max_signed_column_diff(&full_vecs, &top.eigenvectors) <= 1e-9);
}
