//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, bench_with_input,
//! finish}`, `Bencher::iter`, `BenchmarkId`) with a plain timing loop
//! instead of criterion's statistical machinery: each benchmark is
//! warmed up once, then run for a fixed number of batches, and the
//! mean ns/iter is printed. No plots, no significance testing — enough
//! to compare orders of magnitude offline.

use std::time::Instant;

/// Identifier for a parameterised benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `<function_name>/<parameter>` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { label: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { label: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Time `routine`, running it `self.iters` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

/// Group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark (min 1).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).max(1);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        // One untimed warm-up iteration, then the timed batch.
        let mut warmup = Bencher { iters: 1, elapsed_ns: 0 };
        f(&mut warmup);
        let mut b = Bencher { iters: self.sample_size, elapsed_ns: 0 };
        f(&mut b);
        let per_iter = b.elapsed_ns / b.iters.max(1) as u128;
        println!("bench {}/{}: {} ns/iter ({} iters)", self.name, id, per_iter, b.iters);
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.to_string();
        self.run_one(&id, f);
        self
    }

    /// Benchmark a closure that borrows an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.to_string();
        self.run_one(&label, |b| f(b, input));
        self
    }

    /// End the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Top-level benchmark harness.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 10, _criterion: self }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("bench");
        g.bench_function(id, f);
        self
    }
}

/// Re-export matching upstream's `criterion::black_box`.
pub use std::hint::black_box;

/// Collect benchmark functions into a runner, as upstream does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point invoking each group from `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        let mut count = 0u64;
        g.bench_function("counting", |b| b.iter(|| count += 1));
        g.finish();
        // warm-up (1) + timed batch (3), twice registered? bench ran once:
        assert_eq!(count, 4);
    }

    #[test]
    fn bench_with_input_passes_value() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("inputs");
        g.sample_size(2);
        let mut seen = 0u64;
        g.bench_with_input(BenchmarkId::new("id", 7), &7u64, |b, &v| {
            b.iter(|| seen = v)
        });
        assert_eq!(seen, 7);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("fit", 128).to_string(), "fit/128");
        assert_eq!(BenchmarkId::from_parameter(9).to_string(), "9");
    }

    criterion_group!(demo_group, demo_bench);

    fn demo_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("macro_demo");
        g.sample_size(1);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    #[test]
    fn macros_compose() {
        demo_group();
    }
}
