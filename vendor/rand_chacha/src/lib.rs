//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 keystream
//! generator (D. J. Bernstein's ChaCha with 8 rounds) implementing the
//! vendored `rand` traits.
//!
//! The workspace uses `ChaCha8Rng` everywhere a seeded generator is
//! needed; what matters to callers is (a) per-seed determinism and
//! (b) statistical quality, both of which the real ChaCha8 core
//! provides. Word-stream compatibility with upstream `rand_chacha` is
//! NOT guaranteed (upstream draws from the stream in a different
//! order), and no workspace test depends on upstream's exact values.

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// A ChaCha8 random number generator seeded with a 256-bit key.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Input block: constants, 8 key words, 64-bit counter, 64-bit
    /// stream id (fixed 0).
    state: [u32; 16],
    /// Current output block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 = exhausted.
    cursor: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in
            self.block.iter_mut().zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12–13.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32))
            .wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }

    /// Current 64-bit word position within the keystream (diagnostics).
    pub fn get_word_pos(&self) -> u128 {
        let counter = self.state[12] as u128 | ((self.state[13] as u128) << 32);
        counter * 16 + self.cursor as u128
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646E;
        state[2] = 0x7962_2D32;
        state[3] = 0x6B20_6574;
        for i in 0..8 {
            let mut b = [0u8; 4];
            b.copy_from_slice(&seed[i * 4..(i + 1) * 4]);
            state[4 + i] = u32::from_le_bytes(b);
        }
        // Counter and stream id start at zero.
        Self { state, block: [0; 16], cursor: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(0xDA5C);
        let mut b = ChaCha8Rng::seed_from_u64(0xDA5C);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(0xDA5D);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn chacha_core_matches_known_structure() {
        // The all-zero key must not produce an all-zero stream, and two
        // consecutive blocks must differ (counter advanced).
        let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert!(first.iter().any(|&w| w != 0));
        assert_ne!(first, second);
    }

    #[test]
    fn uniformity_sanity() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 20_000;
        let mut ones = 0u64;
        for _ in 0..n {
            ones += rng.next_u64().count_ones() as u64;
        }
        let mean_bits = ones as f64 / n as f64;
        assert!((mean_bits - 32.0).abs() < 0.2, "bit bias: {mean_bits}");
    }

    #[test]
    fn gen_range_integration() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut hist = [0usize; 10];
        for _ in 0..10_000 {
            hist[rng.gen_range(0usize..10)] += 1;
        }
        for &h in &hist {
            assert!((700..1300).contains(&h), "skewed histogram: {hist:?}");
        }
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(a.get_word_pos(), b.get_word_pos());
        for _ in 0..40 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
