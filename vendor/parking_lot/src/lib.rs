//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the parking_lot API it actually uses:
//! [`Mutex`] and [`RwLock`] whose guards are returned directly instead
//! of through a `LockResult`. Poisoning is absorbed (`into_inner`) —
//! the same no-poisoning semantics parking_lot provides.

use std::sync::{self, LockResult};

/// A mutual-exclusion lock whose `lock()` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

fn unpoison<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        unpoison(self.0.lock())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

/// A reader–writer lock whose `read()`/`write()` never return `Result`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader–writer lock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        unpoison(self.0.read())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        unpoison(self.0.write())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
