//! Offline shim of the `libc` crate: only the items `dasc-store`'s
//! mmap wrapper uses. Raw FFI declarations against the platform C
//! library — no code of the real crate is vendored, the symbols are
//! provided by the system libc the binary already links.
//!
//! Everything is gated to Unix: on other targets the store falls back
//! to buffered reads and never references these symbols.

#![allow(non_camel_case_types)]

#[cfg(unix)]
pub use unix::*;

#[cfg(unix)]
mod unix {
    pub type c_void = core::ffi::c_void;
    pub type c_int = i32;
    pub type size_t = usize;
    // 64-bit file offsets everywhere we build (Linux/macOS 64-bit).
    pub type off_t = i64;

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;
    pub const MAP_FAILED: *mut c_void = !0 as *mut c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: size_t,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: off_t,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: size_t) -> c_int;
    }
}
