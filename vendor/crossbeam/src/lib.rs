//! Offline stand-in for the `crossbeam` crate, backed by
//! `std::thread::scope`.
//!
//! Only the scoped-thread API the workspace uses is provided:
//! `crossbeam::thread::scope(|s| { s.spawn(|_| ...); ... })`, returning
//! `Ok(..)` like the real crate. Unlike crossbeam, a panic in a spawned
//! thread propagates when the scope joins (std semantics) instead of
//! being collected into the `Err` arm — every call site in this
//! workspace treats that case as fatal anyway.

pub mod thread {
    use std::any::Any;
    use std::thread as stdthread;

    /// Scope handle passed to [`scope`] closures; mirrors
    /// `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: stdthread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread scoped to the enclosing [`scope`] call. The
        /// closure receives the scope itself (crossbeam convention),
        /// allowing nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let child = Scope { inner: self.inner };
            ScopedJoinHandle { inner: self.inner.spawn(move || f(&child)) }
        }
    }

    /// Run `f` with a scope in which borrowed-data threads can be
    /// spawned; all threads are joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(stdthread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_borrows() {
        let data = vec![1u64, 2, 3, 4];
        let total = std::sync::atomic::AtomicU64::new(0);
        super::thread::scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    let sum: u64 = chunk.iter().sum();
                    total.fetch_add(sum, std::sync::atomic::Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(total.into_inner(), 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let hits = std::sync::atomic::AtomicU64::new(0);
        super::thread::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| {
                    hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                });
            });
        })
        .unwrap();
        assert_eq!(hits.into_inner(), 1);
    }

    #[test]
    fn join_returns_value() {
        let out = super::thread::scope(|s| {
            let h = s.spawn(|_| 7u32);
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(out, 7);
    }
}
