//! Offline stand-in for the `rand` 0.8 crate.
//!
//! The build environment cannot reach crates.io, so the workspace
//! vendors the trait surface it actually uses: [`RngCore`],
//! [`SeedableRng`] (including the SplitMix64-based `seed_from_u64`
//! default, matching upstream), the [`Rng`] extension with
//! `gen_range` over half-open and inclusive integer/float ranges, and
//! [`seq::SliceRandom::shuffle`] (Fisher–Yates, matching upstream's
//! algorithm). Generators live in sibling shims (`rand_chacha`).
//!
//! Determinism contract: everything here is a pure function of the
//! underlying generator stream, so seeded runs are reproducible. The
//! exact sample values are NOT bit-identical to upstream `rand` (the
//! uniform-int rejection strategy differs); the workspace only relies
//! on per-seed determinism, never on specific upstream streams.

/// Low-level uniform bit source, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (e.g. `[u8; 32]`).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with SplitMix64 exactly as
    /// upstream `rand_core` does, so `seed_from_u64` streams stay
    /// stable across shim revisions.
    fn seed_from_u64(mut state: u64) -> Self {
        // SplitMix64 (same constants as rand_core 0.6).
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// A range that a uniform value can be drawn from; mirrors
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Widest-lane unbiased integer draw in `[0, bound)` by rejection.
#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Rejection zone keeps the draw exactly uniform.
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_u64_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width u64/i64 inclusive range.
                    return rng.next_u64() as $t;
                }
                let off = uniform_u64_below(rng, span);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty, $unit:expr);*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = $unit(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = $unit(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[inline]
fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

impl_float_sample_range!(f64, unit_f64; f32, unit_f32);

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a range (`gen_range(0..n)`, `0.0..1.0`, …).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// A uniform `bool` with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0,1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence helpers (`SliceRandom`), mirroring `rand::seq`.

    use super::{Rng, RngCore};

    /// Shuffle/choose extension methods on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly choose one element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod rngs {
    //! Simple generators for internal use.

    use super::{RngCore, SeedableRng};

    /// xoshiro256** — a solid general-purpose PRNG; used where callers
    /// ask for an unspecified "StdRng"-like generator.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let r = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            r
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, lane) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *lane = u64::from_le_bytes(b);
            }
            // All-zero state would be a fixed point.
            if s.iter().all(|&x| x == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn seed_from_u64_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(0..=4u32);
            assert!(i <= 4);
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_floats_are_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let u = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        // Mean of 1000 uniform draws should be near 0.5.
        assert!((sum / 1000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left order intact");
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = rng.gen_range(5usize..5);
    }
}
