//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, the [`Strategy`] trait with
//! `prop_map`/`prop_flat_map`, range and `any::<T>()` strategies,
//! `prop::collection::vec`, and the `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!` macros.
//!
//! Differences from the real crate, deliberately accepted:
//! * **no shrinking** — a failing case reports its inputs via the
//!   panic message from the assertion macros, but is not minimized;
//! * **fixed seeding** — cases derive from a per-test deterministic
//!   ChaCha8 stream, so failures always reproduce;
//! * rejects (`prop_assume!`) are retried with fresh inputs up to a
//!   global budget, as upstream does.

use rand::{Rng, SeedableRng};
pub use rand_chacha::ChaCha8Rng as TestRng;

/// Configuration block accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required per property.
    pub cases: u32,
    /// Maximum rejected (assumed-away) cases before giving up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases, ..Self::default() }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64, max_global_rejects: 4096 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — draw fresh inputs and retry.
    Reject,
    /// A `prop_assert!` failed — the property is falsified.
    Fail(String),
}

/// Result alias used by generated test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A value generator. Unlike upstream there is no shrinking tree; a
/// strategy is just a seeded sampler.
pub trait Strategy {
    /// Type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then use it to pick a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Box the strategy (API-compatibility helper).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy adapter returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Always generates a clone of the given value (upstream `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3)
);

/// Uniform over the whole domain of `T` (upstream `any::<T>()`).
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy(core::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct ArbitraryStrategy<T>(core::marker::PhantomData<T>);

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        use rand::RngCore;
        rng.next_u32() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only — the workspace's properties assume
        // arithmetic-safe inputs.
        rng.gen_range(-1e9..1e9)
    }
}

pub mod prop {
    //! Namespace mirror of upstream's `prop::` re-exports.
    pub mod collection {
        //! Collection strategies.
        use super::super::{Strategy, TestRng};
        use rand::Rng;

        /// Size specification: exact, half-open or inclusive range.
        #[derive(Clone, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi_inclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                Self { lo: n, hi_inclusive: n }
            }
        }

        impl From<core::ops::Range<usize>> for SizeRange {
            fn from(r: core::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                Self { lo: r.start, hi_inclusive: r.end - 1 }
            }
        }

        impl From<core::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: core::ops::RangeInclusive<usize>) -> Self {
                Self { lo: *r.start(), hi_inclusive: *r.end() }
            }
        }

        /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
        pub fn vec<S: Strategy>(
            element: S,
            size: impl Into<SizeRange>,
        ) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }

        /// Strategy returned by [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = if self.size.lo == self.size.hi_inclusive {
                    self.size.lo
                } else {
                    rng.gen_range(self.size.lo..=self.size.hi_inclusive)
                };
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

pub mod test_runner {
    //! The driver invoked by the [`proptest!`](crate::proptest) macro
    //! expansion.

    use super::*;

    /// Run `case` until `config.cases` successes, retrying rejects.
    ///
    /// # Panics
    /// Panics (failing the enclosing `#[test]`) when a case fails or
    /// the reject budget is exhausted.
    pub fn run(
        test_name: &str,
        config: &ProptestConfig,
        mut case: impl FnMut(&mut TestRng) -> TestCaseResult,
    ) {
        // Deterministic per-test stream: hash the test name (FNV-1a).
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut rng = TestRng::seed_from_u64(seed);
        let mut accepted = 0u32;
        let mut rejected = 0u32;
        while accepted < config.cases {
            match case(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    if rejected > config.max_global_rejects {
                        panic!(
                            "{test_name}: too many prop_assume! rejects \
                             ({rejected}) after {accepted} accepted cases"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "{test_name}: property falsified at case {accepted}: {msg}"
                    );
                }
            }
        }
    }
}

pub mod prelude {
    //! Drop-in replacement for `proptest::prelude::*`.
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume,
        proptest, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Assert inside a property; failure reports the case instead of
/// unwinding through the sampler.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discard the current case and redraw (upstream `prop_assume!`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Define property tests:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_prop(x in 0usize..10, v in prop::collection::vec(0.0f64..1.0, 3)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])+
        fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::test_runner::run(
                    stringify!($name),
                    &config,
                    |__proptest_rng: &mut $crate::TestRng| -> $crate::TestCaseResult {
                        $(
                            let $arg =
                                $crate::Strategy::sample(&($strat), __proptest_rng);
                        )*
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, f in -2.0f64..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(0u32..5, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn nested_vec_exact_size(m in prop::collection::vec(prop::collection::vec(0.0f64..1.0, 3usize), 2usize)) {
            prop_assert_eq!(m.len(), 2);
            prop_assert!(m.iter().all(|row| row.len() == 3));
        }

        #[test]
        fn flat_map_dependent_sizes(v in (1usize..=4).prop_flat_map(|n| prop::collection::vec(0i32..10, n * n))) {
            let n = (v.len() as f64).sqrt() as usize;
            prop_assert_eq!(n * n, v.len());
        }

        #[test]
        fn assume_rejects_cleanly(x in 0usize..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn any_u64_varies(a in any::<u64>(), b in any::<u64>()) {
            // Not a real property — just exercise the path. Equality is
            // astronomically unlikely but permitted.
            let _ = a == b;
        }
    }

    #[test]
    #[should_panic(expected = "property falsified")]
    fn failing_property_panics() {
        proptest! {
            #[test]
            fn inner(x in 0usize..10) {
                prop_assert!(x > 100, "x = {}", x);
            }
        }
        inner();
    }

    #[test]
    fn deterministic_rerun() {
        use crate::Strategy;
        use rand::SeedableRng;
        let strat = crate::prop::collection::vec(0.0f64..1.0, 5usize);
        let mut r1 = crate::TestRng::seed_from_u64(11);
        let mut r2 = crate::TestRng::seed_from_u64(11);
        assert_eq!(strat.sample(&mut r1), strat.sample(&mut r2));
    }
}
