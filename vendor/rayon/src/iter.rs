//! Parallel iterator facade over `dasc-pool`.
//!
//! Every operation funnels into [`run_indexed`]: a fixed-length index
//! space `0..len` is split recursively with [`dasc_pool::join`] until
//! pieces are small enough, and a shared `Fn(usize)` is invoked once per
//! index. Sources map indices to items (slice element `i`, chunk `i`,
//! range offset `i`, owned element `i`), adaptors compose on the item,
//! and consumers either discharge side effects (`for_each`) or write
//! result `i` into slot `i` of a pre-sized buffer (`collect`). Because
//! item `i` always lands in slot `i`, outputs are bit-identical to a
//! sequential run no matter how the schedule interleaves.

use std::marker::PhantomData;

/// Split granularity: aim for this many pieces per worker so stealing
/// can rebalance uneven item costs (e.g. triangular Gram rows).
const SPLITS_PER_THREAD: usize = 8;

/// A raw pointer that may cross threads. Disjointness of the indices
/// touched by each task is what makes the accesses race-free.
struct SendPtr<T>(*mut T);

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Pointer to element `i`. Taking `self` by value makes closures
    /// capture the whole (Send) wrapper rather than the raw field.
    ///
    /// # Safety
    /// `i` must be within the allocation this pointer derives from.
    unsafe fn at(self, i: usize) -> *mut T {
        self.0.add(i)
    }
}
// Safety: only ever dereferenced at indices owned exclusively by one task.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Invoke `f(i)` for every `i in 0..len`, splitting across the pool.
fn run_indexed<F>(len: usize, f: F)
where
    F: Fn(usize) + Sync + Send,
{
    if len == 0 {
        return;
    }
    let threads = dasc_pool::current_num_threads();
    if threads == 1 || len == 1 {
        for i in 0..len {
            f(i);
        }
        return;
    }
    let leaf = (len / (threads * SPLITS_PER_THREAD)).max(1);
    dasc_pool::in_pool(|| split_run(0, len, leaf, &f));
}

fn split_run<F>(start: usize, end: usize, leaf: usize, f: &F)
where
    F: Fn(usize) + Sync,
{
    let len = end - start;
    if len <= leaf {
        for i in start..end {
            f(i);
        }
        return;
    }
    let mid = start + len / 2;
    dasc_pool::join(
        || split_run(start, mid, leaf, f),
        || split_run(mid, end, leaf, f),
    );
}

/// A parallel iterator with an exactly-known length and stable indices.
pub trait ParallelIterator: Sized {
    /// The element type.
    type Item: Send;

    /// Exact number of items.
    fn len_hint(&self) -> usize;

    /// Consume the iterator, invoking `f(index, item)` once per item.
    /// The index is the item's stable position (0-based).
    fn drive<F>(self, f: F)
    where
        F: Fn(usize, Self::Item) + Sync + Send;

    /// Map each item through `g`.
    fn map<U, G>(self, g: G) -> Map<Self, G>
    where
        U: Send,
        G: Fn(Self::Item) -> U + Sync + Send,
    {
        Map { inner: self, g }
    }

    /// Pair each item with its stable index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { inner: self }
    }

    /// Run `g` on every item (parallel side effects on disjoint data).
    fn for_each<G>(self, g: G)
    where
        G: Fn(Self::Item) + Sync + Send,
    {
        self.drive(move |_, item| g(item));
    }

    /// Collect into a container, preserving item order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }

    /// Sum the items. Item production is parallel; the reduction itself
    /// runs in sequential index order, so floating-point totals are
    /// bit-identical to a sequential fold regardless of thread count.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        let items: Vec<Self::Item> = self.collect();
        items.into_iter().sum()
    }
}

/// Order-preserving parallel counterpart of `FromIterator`.
pub trait FromParallelIterator<T: Send> {
    /// Build the container from a parallel iterator.
    fn from_par_iter<P>(p: P) -> Self
    where
        P: ParallelIterator<Item = T>;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P>(p: P) -> Self
    where
        P: ParallelIterator<Item = T>,
    {
        let len = p.len_hint();
        let mut out: Vec<T> = Vec::with_capacity(len);
        let ptr = SendPtr(out.as_mut_ptr());
        p.drive(move |i, item| {
            debug_assert!(i < len);
            // Safety: each index is produced exactly once, and `i < len
            // <= capacity`; writes are disjoint.
            unsafe { ptr.at(i).write(item) };
        });
        // Safety: `drive` invoked the callback for every `i in 0..len`
        // (it blocks until all splits complete), so the buffer is fully
        // initialized.
        unsafe { out.set_len(len) };
        out
    }
}

// ---------------------------------------------------------------------
// Adaptors
// ---------------------------------------------------------------------

/// See [`ParallelIterator::map`].
pub struct Map<I, G> {
    inner: I,
    g: G,
}

impl<I, U, G> ParallelIterator for Map<I, G>
where
    I: ParallelIterator,
    U: Send,
    G: Fn(I::Item) -> U + Sync + Send,
{
    type Item = U;

    fn len_hint(&self) -> usize {
        self.inner.len_hint()
    }

    fn drive<F>(self, f: F)
    where
        F: Fn(usize, U) + Sync + Send,
    {
        let g = self.g;
        self.inner.drive(move |i, item| f(i, g(item)));
    }
}

/// See [`ParallelIterator::enumerate`].
pub struct Enumerate<I> {
    inner: I,
}

impl<I> ParallelIterator for Enumerate<I>
where
    I: ParallelIterator,
{
    type Item = (usize, I::Item);

    fn len_hint(&self) -> usize {
        self.inner.len_hint()
    }

    fn drive<F>(self, f: F)
    where
        F: Fn(usize, (usize, I::Item)) + Sync + Send,
    {
        self.inner.drive(move |i, item| f(i, (i, item)));
    }
}

// ---------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------

/// Shared-slice source (`par_iter`).
pub struct Iter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for Iter<'a, T> {
    type Item = &'a T;

    fn len_hint(&self) -> usize {
        self.slice.len()
    }

    fn drive<F>(self, f: F)
    where
        F: Fn(usize, &'a T) + Sync + Send,
    {
        let slice = self.slice;
        run_indexed(slice.len(), move |i| f(i, &slice[i]));
    }
}

/// Mutable-slice source (`par_iter_mut`).
pub struct IterMut<'a, T> {
    ptr: SendPtr<T>,
    len: usize,
    marker: PhantomData<&'a mut [T]>,
}

impl<'a, T: Send> ParallelIterator for IterMut<'a, T> {
    type Item = &'a mut T;

    fn len_hint(&self) -> usize {
        self.len
    }

    fn drive<F>(self, f: F)
    where
        F: Fn(usize, &'a mut T) + Sync + Send,
    {
        let ptr = self.ptr;
        // Safety: each index yields a distinct element of the borrowed
        // slice, so the `&mut` references handed out are disjoint.
        run_indexed(self.len, move |i| f(i, unsafe { &mut *ptr.at(i) }));
    }
}

/// Shared-chunk source (`par_chunks`).
pub struct Chunks<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for Chunks<'a, T> {
    type Item = &'a [T];

    fn len_hint(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn drive<F>(self, f: F)
    where
        F: Fn(usize, &'a [T]) + Sync + Send,
    {
        let (slice, size) = (self.slice, self.size);
        let n = self.len_hint();
        run_indexed(n, move |i| {
            let lo = i * size;
            let hi = (lo + size).min(slice.len());
            f(i, &slice[lo..hi]);
        });
    }
}

/// Mutable-chunk source (`par_chunks_mut`).
pub struct ChunksMut<'a, T> {
    ptr: SendPtr<T>,
    len: usize,
    size: usize,
    marker: PhantomData<&'a mut [T]>,
}

impl<'a, T: Send> ParallelIterator for ChunksMut<'a, T> {
    type Item = &'a mut [T];

    fn len_hint(&self) -> usize {
        self.len.div_ceil(self.size)
    }

    fn drive<F>(self, f: F)
    where
        F: Fn(usize, &'a mut [T]) + Sync + Send,
    {
        let (ptr, len, size) = (self.ptr, self.len, self.size);
        let n = self.len_hint();
        run_indexed(n, move |i| {
            let lo = i * size;
            let chunk_len = size.min(len - lo);
            // Safety: chunk `i` covers `[i*size, i*size + chunk_len)`;
            // chunks are pairwise disjoint and in-bounds.
            let chunk = unsafe { std::slice::from_raw_parts_mut(ptr.at(lo), chunk_len) };
            f(i, chunk);
        });
    }
}

/// Index-range source (`(0..n).into_par_iter()`).
pub struct RangeIter {
    start: usize,
    end: usize,
}

impl ParallelIterator for RangeIter {
    type Item = usize;

    fn len_hint(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    fn drive<F>(self, f: F)
    where
        F: Fn(usize, usize) + Sync + Send,
    {
        let start = self.start;
        run_indexed(self.len_hint(), move |i| f(i, start + i));
    }
}

/// Owned-`Vec` source (`vec.into_par_iter()`): items are moved out.
pub struct VecIter<T> {
    vec: Vec<T>,
}

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;

    fn len_hint(&self) -> usize {
        self.vec.len()
    }

    fn drive<F>(self, f: F)
    where
        F: Fn(usize, T) + Sync + Send,
    {
        let mut vec = std::mem::ManuallyDrop::new(self.vec);
        let len = vec.len();
        let cap = vec.capacity();
        let ptr = SendPtr(vec.as_mut_ptr());
        // Safety: each element is read (moved out) exactly once; the
        // buffer outlives the run because `run_indexed` blocks until all
        // splits complete. On panic the buffer and unread items leak —
        // memory-safe, no double drop.
        run_indexed(len, move |i| f(i, unsafe { std::ptr::read(ptr.at(i)) }));
        // Safety: all elements were moved out above; reconstituting with
        // length 0 frees the allocation without dropping elements.
        drop(unsafe { Vec::from_raw_parts(ptr.0, 0, cap) });
    }
}

// ---------------------------------------------------------------------
// Entry-point traits
// ---------------------------------------------------------------------

/// `into_par_iter()` for owned iterables the workspace uses.
pub trait IntoParallelIterator {
    /// The resulting parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The element type.
    type Item: Send;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = RangeIter;
    type Item = usize;

    fn into_par_iter(self) -> RangeIter {
        RangeIter {
            start: self.start,
            end: self.end,
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = VecIter<T>;
    type Item = T;

    fn into_par_iter(self) -> VecIter<T> {
        VecIter { vec: self }
    }
}

/// `par_iter()` / `par_chunks()` on slices (and `Vec` via deref).
pub trait ParallelSlice<T: Sync> {
    /// Parallel shared iterator over the elements.
    fn par_iter(&self) -> Iter<'_, T>;
    /// Parallel iterator over `chunk_size`-sized shared chunks.
    fn par_chunks(&self, chunk_size: usize) -> Chunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> Iter<'_, T> {
        Iter { slice: self }
    }

    fn par_chunks(&self, chunk_size: usize) -> Chunks<'_, T> {
        assert!(chunk_size > 0, "par_chunks: chunk size must be positive");
        Chunks {
            slice: self,
            size: chunk_size,
        }
    }
}

/// Mutable counterparts on slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel mutable iterator over the elements.
    fn par_iter_mut(&mut self) -> IterMut<'_, T>;
    /// Parallel iterator over `chunk_size`-sized mutable chunks.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> IterMut<'_, T> {
        IterMut {
            ptr: SendPtr(self.as_mut_ptr()),
            len: self.len(),
            marker: PhantomData,
        }
    }

    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMut<'_, T> {
        assert!(chunk_size > 0, "par_chunks_mut: chunk size must be positive");
        ChunksMut {
            ptr: SendPtr(self.as_mut_ptr()),
            len: self.len(),
            size: chunk_size,
            marker: PhantomData,
        }
    }
}
