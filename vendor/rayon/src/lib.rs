//! Offline stand-in for `rayon`, backed by a real thread pool.
//!
//! The build environment cannot reach crates.io, so this facade provides
//! the `par_iter`-family entry points the workspace uses. Unlike the
//! original shim (which lowered everything to sequential `std`
//! iterators), the adaptors here drive the `dasc-pool` work-stealing
//! thread pool: `join` forks onto per-worker deques, and the iterator
//! operations split index ranges recursively across workers.
//!
//! Two properties the workspace relies on:
//!
//! * **Determinism** — every operation is *order-preserving by index*:
//!   `map`/`collect` write result `i` into slot `i`, `for_each` over
//!   `par_iter_mut`/`par_chunks_mut` touches disjoint elements, and
//!   `sum` reduces in sequential index order. Results are bit-identical
//!   to a 1-thread run regardless of thread count or steal schedule.
//! * **Sequential fallback** — under `DASC_NUM_THREADS=1` (or inside
//!   `dasc_pool::Pool::new(1).install(..)`) every entry point degrades
//!   to a plain inline loop with no pool interaction at all.
//!
//! Only the API subset the workspace uses is implemented: sources
//! (`par_iter`, `par_iter_mut`, `par_chunks`, `par_chunks_mut`,
//! `into_par_iter` on `Range<usize>` and `Vec<T>`), adaptors (`map`,
//! `enumerate`), and consumers (`for_each`, `collect` into `Vec`,
//! `sum`). Swapping the real rayon back in later remains a
//! version-requirement change in the workspace manifest.

pub mod iter;

/// Number of threads the pool governing the current thread runs.
pub fn current_num_threads() -> usize {
    dasc_pool::current_num_threads()
}

/// Potentially-parallel fork-join over the work-stealing pool.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    dasc_pool::join(a, b)
}

pub mod prelude {
    //! Drop-in replacement for `rayon::prelude::*`.
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, ParallelIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_map_collect() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
    }

    #[test]
    fn range_into_par_iter() {
        let squares: Vec<usize> = (0..5usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn vec_into_par_iter_moves_items() {
        let groups: Vec<Vec<usize>> = vec![vec![1, 2], vec![3], vec![4, 5, 6]];
        let lens: Vec<usize> = groups.into_par_iter().map(|g| g.len()).collect();
        assert_eq!(lens, vec![2, 1, 3]);
    }

    #[test]
    fn par_chunks_mut_for_each() {
        let mut data = vec![0u32; 6];
        data.par_chunks_mut(2).enumerate().for_each(|(i, chunk)| {
            for c in chunk {
                *c = i as u32;
            }
        });
        assert_eq!(data, vec![0, 0, 1, 1, 2, 2]);
    }

    #[test]
    fn par_iter_mut_enumerate() {
        let mut y = vec![0.0f64; 4];
        y.par_iter_mut().enumerate().for_each(|(i, v)| *v = i as f64);
        assert_eq!(y, vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn par_chunks_matches_std_chunks() {
        let data: Vec<u32> = (0..10).collect();
        let sums: Vec<u32> = data.par_chunks(3).map(|c| c.iter().sum()).collect();
        let expected: Vec<u32> = data.chunks(3).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, expected);
    }

    #[test]
    fn sum_matches_sequential_fold() {
        let n = 1000usize;
        let par: f64 = (0..n).into_par_iter().map(|i| (i as f64).sqrt()).sum();
        let seq: f64 = (0..n).map(|i| (i as f64).sqrt()).sum();
        // Exact equality: the parallel sum reduces in index order.
        assert_eq!(par, seq);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }

    #[test]
    fn empty_inputs() {
        let empty: Vec<i32> = Vec::new();
        let out: Vec<i32> = empty.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let out: Vec<usize> = (0..0usize).into_par_iter().collect();
        assert!(out.is_empty());
    }
}
