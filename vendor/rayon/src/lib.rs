//! Offline stand-in for `rayon`.
//!
//! The build environment cannot reach crates.io, so this shim provides
//! the `par_iter`-family entry points the workspace uses and returns
//! **ordinary sequential `std` iterators**. Every adaptor and terminal
//! operation (`map`, `enumerate`, `for_each`, `collect`, `sum`, …)
//! then comes from `std::iter::Iterator`, so call sites compile and
//! behave identically — minus the parallelism.
//!
//! Rationale: correctness and determinism first. The paper-reproduction
//! pipelines treat rayon as an accelerator, not a semantic dependency,
//! and results are defined to be independent of the thread count.
//! Subsystems that need real concurrency on hot paths (e.g. the
//! `dasc-serve` bulk-assignment engine) use explicit `std::thread`
//! pools instead of this shim. Swapping the real rayon back in later is
//! a one-line change in the workspace manifest.

/// Number of "threads" the shim runs — always 1 (sequential).
pub fn current_num_threads() -> usize {
    1
}

/// Sequential stand-in for `rayon::join`: runs `a` then `b`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

pub mod prelude {
    //! Drop-in replacement for `rayon::prelude::*`.

    /// `into_par_iter()` for any owned iterable (ranges, `Vec`, …).
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Sequential iterator standing in for the parallel one.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<I: IntoIterator + Sized> IntoParallelIterator for I {}

    /// `par_iter()` / `par_chunks()` on slices (and `Vec` via deref).
    pub trait ParallelSlice<T> {
        /// Sequential `iter()` standing in for `par_iter()`.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        /// Sequential `chunks()` standing in for `par_chunks()`.
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    /// Mutable counterparts on slices.
    pub trait ParallelSliceMut<T> {
        /// Sequential `iter_mut()` standing in for `par_iter_mut()`.
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        /// Sequential `chunks_mut()` standing in for `par_chunks_mut()`.
        fn par_chunks_mut(
            &mut self,
            chunk_size: usize,
        ) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }
        fn par_chunks_mut(
            &mut self,
            chunk_size: usize,
        ) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_map_collect() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
    }

    #[test]
    fn range_into_par_iter() {
        let squares: Vec<usize> = (0..5usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn par_chunks_mut_for_each() {
        let mut data = vec![0u32; 6];
        data.par_chunks_mut(2).enumerate().for_each(|(i, chunk)| {
            for c in chunk {
                *c = i as u32;
            }
        });
        assert_eq!(data, vec![0, 0, 1, 1, 2, 2]);
    }

    #[test]
    fn par_iter_mut_enumerate() {
        let mut y = vec![0.0f64; 4];
        y.par_iter_mut().enumerate().for_each(|(i, v)| *v = i as f64);
        assert_eq!(y, vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }
}
