//! Kernel ridge regression on the DASC approximation.
//!
//! The paper's abstract: the kernel-matrix approximation "can be used
//! with any kernel-based machine learning algorithm". This example uses
//! it for regression: the global `(K + λI)α = y` solve decomposes into
//! per-bucket solves, queries are routed to buckets by their LSH
//! signature, and the result is compared against exact KRR.
//!
//! ```text
//! cargo run --release --example kernel_regression
//! ```

use dasc::core::{DascConfig, DascRegressor};
use dasc::prelude::*;

fn main() {
    // A piecewise response over two well-separated regions of the input
    // space (think: two regimes of a physical process).
    let n_per = 300usize;
    let mut xs: Vec<Vec<f64>> = Vec::new();
    let mut ys: Vec<f64> = Vec::new();
    for i in 0..n_per {
        let t = i as f64 / n_per as f64;
        // Regime A near the origin: a sine response.
        xs.push(vec![0.2 * t, 0.1]);
        ys.push((t * std::f64::consts::TAU).sin());
        // Regime B far away: a quadratic response.
        xs.push(vec![0.8 + 0.2 * t, 0.9]);
        ys.push(t * t - 0.5);
    }
    let n = xs.len();

    let config = DascConfig::for_dataset(n, 2)
        .kernel(Kernel::gaussian(0.05))
        .lsh(LshConfig::with_bits(2));
    let reg = DascRegressor::fit(&config, &xs, &ys, 1e-5);
    println!("fitted {} points across {} buckets", n, reg.num_buckets());
    println!("training MSE (bucket-routed): {:.6}", reg.mse(&xs, &ys));

    // Compare against the exact (full-Gram) solve.
    let exact = RidgeModel::fit_exact(&xs, &ys, Kernel::gaussian(0.05), 1e-5);
    println!(
        "training MSE (exact)        : {:.6}",
        exact.mse(&xs, &ys, &xs)
    );

    println!("\nquery                 fast-path   exact   truth");
    for (q, truth) in [
        (vec![0.10, 0.1], (0.5f64 * std::f64::consts::TAU).sin()),
        (vec![0.05, 0.1], (0.25f64 * std::f64::consts::TAU).sin()),
        (vec![0.90, 0.9], 0.25f64 - 0.5),
        (vec![0.95, 0.9], 0.5625f64 - 0.5),
    ] {
        println!(
            "{:<21} {:>9.4} {:>7.4} {:>7.4}",
            format!("{q:?}"),
            reg.predict(&q),
            exact.predict(&q, &xs),
            truth
        );
    }

    println!(
        "\nThe bucket-routed prediction touches only one bucket's points \
         (O(Nᵢ) per query instead of O(N)) and matches the exact solve \
         away from bucket boundaries."
    );
}
