//! The kernel-matrix approximation on its own.
//!
//! The paper stresses that steps 1–3 (LSH → buckets → block-diagonal
//! Gram) are independent of the downstream algorithm: "it can be used to
//! scale many kernel-based machine learning algorithms". This example
//! builds the approximation for several kernels, measures the
//! Frobenius-norm retention (the Figure 5 metric) and the memory saving,
//! without running any clustering at all.
//!
//! ```text
//! cargo run --release --example kernel_approximation
//! ```

use dasc::core::{Dasc, DascConfig};
use dasc::kernel::full_gram;
use dasc::metrics::fnorm_ratio;
use dasc::prelude::*;

fn main() {
    let dataset = SyntheticConfig::blobs(1_500, 32, 12)
        .spread(0.15)
        .noise_fraction(0.25)
        .seed(11)
        .generate();
    let n = dataset.points.len();

    println!(
        "{:<22} {:>8} {:>12} {:>12} {:>9}",
        "kernel", "buckets", "approx KB", "full KB", "Fnorm"
    );
    for (name, kernel) in [
        ("gaussian(sigma=0.5)", Kernel::gaussian(0.5)),
        ("gaussian(sigma=1.5)", Kernel::gaussian(1.5)),
        ("laplacian(gamma=1.0)", Kernel::Laplacian { gamma: 1.0 }),
        (
            "polynomial(2, c=1)",
            Kernel::Polynomial { degree: 2, c: 1.0 },
        ),
        ("linear", Kernel::Linear),
    ] {
        let dasc = Dasc::new(
            DascConfig::for_dataset(n, 12)
                .kernel(kernel)
                .lsh(LshConfig::with_bits(6)),
        );
        let approx = dasc.approximate_gram(&dataset.points);
        let exact = full_gram(&dataset.points, &kernel);
        println!(
            "{:<22} {:>8} {:>12} {:>12} {:>9.4}",
            name,
            approx.blocks().len(),
            approx.memory_bytes() / 1024,
            dasc::kernel::gram_memory_bytes(n) / 1024,
            fnorm_ratio(&approx.to_dense(), &exact)
        );
    }

    println!(
        "\nThe same bucket structure serves every kernel; only the block \
         contents change — the approximation layer is algorithm-agnostic."
    );
}
