//! Document clustering: the paper's motivating workload.
//!
//! Generates a Wikipedia-like corpus (tf-idf vectors over the top
//! F = 11 terms, category counts per the paper's Table 1 fit), then
//! compares DASC against exact spectral clustering and the PSC/NYST
//! baselines on accuracy, NMI and memory.
//!
//! ```text
//! cargo run --release --example document_clustering
//! ```

use dasc::core::{
    Dasc, DascConfig, Nystrom, NystromConfig, ParallelSpectral, PscConfig, SpectralClustering,
    SpectralConfig,
};
use dasc::kernel::gram_memory_bytes;
use dasc::metrics::nmi;
use dasc::prelude::*;

fn main() {
    let n = 2_048usize;
    let corpus = WikiCorpusConfig::new(n).seed(7).generate();
    let truth = corpus.labels.as_ref().expect("labelled corpus");
    let k = corpus.num_classes().expect("labelled corpus");
    let kernel = Kernel::gaussian_median_heuristic(&corpus.points);
    println!(
        "corpus: {n} documents, {k} categories, {} dims\n",
        corpus.dims()
    );

    println!(
        "{:<8} {:>9} {:>7} {:>12}",
        "method", "accuracy", "NMI", "memory (KB)"
    );

    let dasc = Dasc::new(DascConfig::for_dataset(n, k).kernel(kernel)).run(&corpus.points);
    report(
        "DASC",
        &dasc.clustering.assignments,
        truth,
        dasc.approx_gram_bytes,
    );

    let sc = SpectralClustering::new(SpectralConfig::new(k).kernel(kernel)).run(&corpus.points);
    report(
        "SC",
        &sc.clustering.assignments,
        truth,
        gram_memory_bytes(n),
    );

    let psc =
        ParallelSpectral::new(PscConfig::new(k).kernel(kernel).neighbors(40)).run(&corpus.points);
    report(
        "PSC",
        &psc.clustering.assignments,
        truth,
        psc.sparse_memory_bytes,
    );

    let nyst = Nystrom::new(NystromConfig::new(k).kernel(kernel)).run(&corpus.points);
    report(
        "NYST",
        &nyst.clustering.assignments,
        truth,
        nyst.memory_bytes,
    );
}

fn report(name: &str, predicted: &[usize], truth: &[usize], bytes: usize) {
    println!(
        "{:<8} {:>9.3} {:>7.3} {:>12}",
        name,
        accuracy(predicted, truth),
        nmi(predicted, truth),
        bytes / 1024
    );
}
