//! Kernel classification on the DASC approximation — the paper's own
//! motivating use case (its introduction cites an SVM pedestrian
//! detector whose error halves when the training set doubles, which is
//! exactly when the O(N²) kernel matrix becomes the bottleneck).
//!
//! An LS-SVM (one-vs-rest) is trained on the exact Gram matrix and on
//! the DASC block-diagonal approximation; held-out accuracy and memory
//! are compared.
//!
//! ```text
//! cargo run --release --example classification
//! ```

use dasc::core::{Dasc, DascConfig};
use dasc::kernel::KernelClassifier;
use dasc::prelude::*;

fn main() {
    let dataset = SyntheticConfig::blobs(1_200, 16, 6).seed(99).generate();
    let (train, test) = dataset.split(0.8, 7);
    let train_labels = train.labels.as_ref().expect("labelled");
    let test_labels = test.labels.as_ref().expect("labelled");
    let kernel = Kernel::gaussian_median_heuristic(&train.points);

    println!(
        "train {} / test {} points, {} classes\n",
        train.len(),
        test.len(),
        dataset.num_classes().unwrap()
    );

    // Exact LS-SVM: one global (K + I/γ)α = y solve per class.
    let exact = KernelClassifier::fit_exact(&train.points, train_labels, kernel, 50.0);
    let exact_acc = exact.accuracy(&test.points, test_labels, &train.points);
    let exact_kb = 4 * train.len() * train.len() / 1024;
    println!("exact LS-SVM   : accuracy {exact_acc:.3}, gram {exact_kb} KB");

    // DASC-approximated LS-SVM: independent per-bucket solves.
    let dasc = Dasc::new(
        DascConfig::for_dataset(train.len(), 6)
            .kernel(kernel)
            .lsh(LshConfig::with_bits(4)),
    );
    let gram = dasc.approximate_gram(&train.points);
    let blocked = KernelClassifier::fit_blocks(&gram, train_labels, kernel, 50.0);
    let blocked_acc = blocked.accuracy(&test.points, test_labels, &train.points);
    println!(
        "DASC LS-SVM    : accuracy {blocked_acc:.3}, gram {} KB across {} buckets",
        gram.memory_bytes() / 1024,
        gram.blocks().len()
    );

    println!(
        "\nThe block-diagonal solve costs O(Σ Nᵢ³) instead of O(N³) and \
         stores {:.1}x less kernel matrix, at {} accuracy cost.",
        (4 * train.len() * train.len()) as f64 / gram.memory_bytes().max(1) as f64,
        if (exact_acc - blocked_acc).abs() < 0.02 {
            "negligible".to_string()
        } else {
            format!("{:.3}", exact_acc - blocked_acc)
        }
    );
}
