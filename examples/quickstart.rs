//! Quickstart: cluster a synthetic dataset with DASC and inspect the
//! result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dasc::prelude::*;

fn main() {
    // 2,000 points in 8 Gaussian blobs, 64 dimensions, values in [0, 1]
    // (the paper's synthetic setup).
    let dataset = SyntheticConfig::paper_default(2_000, 8).seed(42).generate();
    let truth = dataset
        .labels
        .as_ref()
        .expect("generator labels its output");

    // DASC with paper defaults: M = ⌈log₂N⌉/2 − 1 signature bits,
    // P = M − 1 bucket merging, Gaussian kernel.
    let config = DascConfig::for_dataset(dataset.points.len(), 8)
        .kernel(Kernel::gaussian_median_heuristic(&dataset.points));
    let result = Dasc::new(config).run(&dataset.points);

    println!("points        : {}", dataset.points.len());
    println!("buckets       : {}", result.buckets.len());
    println!("bucket sizes  : {:?}", result.buckets.sizes());
    println!("clusters      : {}", result.clustering.num_clusters);
    println!(
        "approx gram   : {} KB (full would be {} KB)",
        result.approx_gram_bytes / 1024,
        4 * dataset.points.len() * dataset.points.len() / 1024
    );
    println!(
        "accuracy      : {:.3}",
        accuracy(&result.clustering.assignments, truth)
    );
    println!(
        "DBI / ASE     : {:.3} / {:.3}",
        davies_bouldin(
            &dataset.points,
            &result.clustering.assignments,
            result.clustering.num_clusters
        ),
        ase(
            &dataset.points,
            &result.clustering.assignments,
            result.clustering.num_clusters
        )
    );
    println!(
        "stage times   : lsh {:?}, bucketing {:?}, gram {:?}, clustering {:?}",
        result.times.lsh, result.times.bucketing, result.times.gram, result.times.clustering
    );
}
