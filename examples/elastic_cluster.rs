//! Elastic execution on the MapReduce substrate.
//!
//! Runs DASC as the paper's two MapReduce stages, stages bucket files
//! through the replicated DFS (the S3 stand-in), and replays the
//! recorded task bag on Amazon-EMR-sized clusters of 4…64 nodes — the
//! Table 3 elasticity mechanism end-to-end.
//!
//! ```text
//! cargo run --release --example elastic_cluster
//! ```

use dasc::core::{Dasc, DascConfig};
use dasc::mapreduce::Dfs;
use dasc::prelude::*;

fn main() {
    // An LSH-aligned grid mixture: 64 clusters on a 6-bit binary grid,
    // the regime where buckets match cluster structure exactly.
    let dataset = dasc::data::SyntheticConfig::grid(8_192, 64, 6)
        .seed(3)
        .generate();
    let truth = dataset.labels.as_ref().expect("labelled");
    let kernel = Kernel::gaussian_median_heuristic(&dataset.points);

    // Execute once through the engine on the 5-machine lab profile.
    let mut lab = ClusterConfig::local_lab();
    lab.records_per_split = 64;
    let dasc = Dasc::new(
        DascConfig::for_dataset(dataset.points.len(), 64)
            .kernel(kernel)
            .lsh(dasc::lsh::LshConfig::with_bits(6)),
    );
    let result = dasc.run_distributed(&dataset.points, &lab);

    println!(
        "job: {} map tasks, {} reduce tasks, {} buckets, accuracy {:.3}\n",
        result.stage1.num_map_tasks(),
        result.stage2.num_reduce_tasks(),
        result.num_buckets,
        accuracy(&result.clustering.assignments, truth)
    );

    // Stage the per-bucket outputs on the replicated DFS, as the paper
    // stages intermediate bucket files on S3 between job-flow steps.
    let dfs = Dfs::new(lab.clone());
    let (_, buckets) = dasc.partition(&dataset.points);
    for (i, bucket) in buckets.buckets().iter().enumerate() {
        let payload: Vec<u8> = bucket
            .members
            .iter()
            .flat_map(|&m| (m as u32).to_le_bytes())
            .collect();
        dfs.put(&format!("/buckets/part-{i:05}"), payload)
            .expect("fresh path");
    }
    println!(
        "dfs: {} bucket files, {} KB logical, {} KB stored (x{} replication)",
        dfs.list("/buckets/").len(),
        dfs.logical_bytes() / 1024,
        dfs.total_stored_bytes() / 1024,
        lab.replication
    );

    // Elasticity: replay the recorded task bag on growing clusters.
    println!("\n{:>6} {:>14} {:>9}", "nodes", "sim time (ms)", "speedup");
    let base = result.simulate_total(&ClusterConfig::emr(4));
    for nodes in [4usize, 8, 16, 32, 64] {
        let t = result.simulate_total(&ClusterConfig::emr(nodes));
        println!(
            "{:>6} {:>14.2} {:>8.2}x",
            nodes,
            t.as_secs_f64() * 1e3,
            base.as_secs_f64() / t.as_secs_f64()
        );
    }
}
