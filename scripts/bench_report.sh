#!/usr/bin/env bash
# Pipeline benchmark report: build the workspace in release mode, run
# the `bench_pipeline` binary (sequential vs. configured-pool runs at
# two or three dataset sizes), and validate that the machine-readable
# output landed as well-formed JSON with the expected fields.
#
# Output: BENCH_pipeline.json in the repo root (override with
# BENCH_OUT=path). Pass --full (or DASC_SCALE=full) for paper-adjacent
# sizes; set DASC_NUM_THREADS to pin the parallel run's pool width.
#
# Pass --dist as the first argument to benchmark the TCP
# coordinator/worker runtime instead (bench_dist → BENCH_dist.json,
# with per-stage times, worker count, shuffle volume, and the
# telemetry on/off observability overhead; further arguments — e.g.
# --workers 4 — go to bench_dist).
set -euo pipefail

cd "$(dirname "$0")/.."

MODE=pipeline
if [ "${1:-}" = "--dist" ]; then
    MODE=dist
    shift
fi

OUT="${BENCH_OUT:-BENCH_$MODE.json}"

fail() { echo "BENCH FAIL: $*" >&2; exit 1; }

echo "== build =="
cargo build --release -q -p dasc-bench

echo "== run =="
"target/release/bench_$MODE" --out "$OUT" "$@"

echo "== validate =="
[ -s "$OUT" ] || fail "$OUT missing or empty"

if [ "$MODE" = dist ]; then
    if command -v python3 >/dev/null 2>&1; then
        python3 - "$OUT" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

assert doc["bench"] == "dist", "wrong bench id"
assert doc["workers"] >= 1, "bad worker count"
assert "obs_overhead_pct" in doc, "missing obs_overhead_pct (telemetry on/off delta)"
assert isinstance(doc["obs_overhead_pct"], (int, float)), "obs_overhead_pct not numeric"
assert doc["obs_overhead_pct"] > -100, "telemetry-off run took non-positive time?"
runs = doc["runs"]
assert len(runs) >= 2, f"expected >=2 sizes, got {len(runs)} runs"
for run in runs:
    assert run["n"] > 0 and run["workers"] >= 1
    assert run["total_s"] > 0 and run["points_per_s"] > 0
    assert run["shuffle_records"] > 0 and run["shuffle_bytes"] > 0
    assert run["ref_total_s"] > 0, "missing shard-addressed timing"
    assert run["shuffle_bytes_ref"] > 0, "missing shard-addressed shuffle volume"
    # Shard-addressed jobs ship shard tables instead of points: by
    # n=4000 the shuffle volume must be at least 5x below inline.
    if run["n"] >= 4000:
        ratio = run["shuffle_bytes"] / run["shuffle_bytes_ref"]
        assert ratio >= 5.0, (
            f"n={run['n']}: shard-addressed shuffle only {ratio:.2f}x below "
            f"inline ({run['shuffle_bytes_ref']} vs {run['shuffle_bytes']} "
            f"bytes, want >= 5x)"
        )
    stages = run["stages_s"]
    for stage in ("map", "reduce"):
        assert stage in stages, f"stages_s missing {stage}"
        assert stages[stage] >= 0, f"negative {stage} time"
print(
    f"OK: {len(runs)} runs on {doc['workers']} workers, "
    f"observability overhead {doc['obs_overhead_pct']:+.1f}%"
)
for run in runs:
    print(
        f"  n={run['n']}: {run['total_s']:.3f}s, "
        f"{run['points_per_s']:.0f} points/s, "
        f"{run['shuffle_bytes']} bytes shuffled inline "
        f"vs {run['shuffle_bytes_ref']} by ref "
        f"({run['shuffle_bytes'] / run['shuffle_bytes_ref']:.1f}x less)"
    )
EOF
    else
        for key in '"bench": "dist"' '"runs"' '"shuffle_bytes"' '"shuffle_bytes_ref"' '"stages_s"' '"obs_overhead_pct"'; do
            grep -q "$key" "$OUT" || fail "$OUT missing $key"
        done
        echo "OK (python3 unavailable; key-presence check only)"
    fi
    echo "BENCH PASS: $OUT"
    exit 0
fi

if command -v python3 >/dev/null 2>&1; then
    python3 - "$OUT" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

assert doc["bench"] == "pipeline", "wrong bench id"
assert doc["parallel_threads"] >= 1, "bad thread count"

# Kernel backend: the resolved dispatch target plus the per-backend
# micro-kernel throughput sweep.
assert doc.get("kernel_backend") in ("scalar", "avx2fma", "neon"), (
    f"bad kernel_backend {doc.get('kernel_backend')!r}"
)
kg = doc["kernel_gram_gflops"]
assert isinstance(kg, dict) and "scalar" in kg, "kernel_gram_gflops missing scalar entry"
assert doc["kernel_backend"] in kg, "resolved backend missing from kernel_gram_gflops"
for name, gflops in kg.items():
    assert name in ("scalar", "avx2fma", "neon"), f"unknown backend {name!r}"
    assert gflops > 0, f"non-positive gram gflops for {name}"
simd = {n: g for n, g in kg.items() if n != "scalar"}
if simd:
    best_name, best = max(simd.items(), key=lambda kv: kv[1])
    ratio = best / kg["scalar"]
    print(f"kernel: {best_name} {best:.2f} GFLOP/s vs scalar {kg['scalar']:.2f} "
          f"({ratio:.2f}x)")
    assert ratio >= 2.0, (
        f"SIMD backend {best_name} only {ratio:.2f}x over scalar (want >= 2x)"
    )

runs = doc["runs"]
assert len(runs) >= 4, f"expected >=2 sizes x 2 thread counts, got {len(runs)} runs"
for run in runs:
    assert run["n"] > 0 and run["threads"] >= 1
    assert run["total_s"] > 0 and run["points_per_s"] > 0
    assert "gram_gflops" in run, "missing gram_gflops (micro-kernel throughput)"
    assert run["gram_gflops"] >= 0, "negative gram_gflops"
    assert run.get("eigen_path") in ("dense_full", "dense_k", "lanczos"), (
        f"bad eigen_path {run.get('eigen_path')!r}"
    )
    stages = run["stages_s"]
    assert stages, "stages_s missing or empty"
    for stage in ("lsh", "bucketing", "gram", "clustering",
                  "laplacian", "eigen", "kmeans"):
        assert stage in stages, f"stages_s missing {stage}"
        assert stages[stage] >= 0, f"negative {stage} time"
    # The substages partition the clustering stage; per-bucket sums can
    # exceed the wall-clock figure when several workers overlap, but a
    # non-trivial run must spend *something* in the eigensolve.
    if run["n"] >= 1000:
        assert stages["eigen"] > 0, "eigen substage empty on a non-trivial run"
        assert stages["kmeans"] > 0, "kmeans substage empty on a non-trivial run"
assert len(doc["speedup"]) * 2 == len(runs), "one speedup entry per size"
# Regression floor on the parallel speedup. With a 1-wide pool the
# bench reuses the sequential run, so the speedup is exactly 1.0; on
# real multi-thread pools the small-n sequential threshold keeps tiny
# runs off the pool, and anything below 0.95 means thread fan-out is
# again costing more than it buys (0.05 is scheduling noise headroom
# for shared runners).
floor = 1.0 if doc["parallel_threads"] == 1 else 0.95
for s in doc["speedup"]:
    assert s["speedup"] >= floor, (
        f"n={s['n']}: speedup {s['speedup']:.3f} below floor {floor}"
    )
print(f"OK: {len(runs)} runs at {doc['parallel_threads']} parallel threads, "
      f"kernel_backend {doc['kernel_backend']}")
for s in doc["speedup"]:
    print(f"  n={s['n']}: speedup {s['speedup']:.2f}x")
EOF
else
    # Fallback: at least confirm the expected keys are present.
    for key in '"bench": "pipeline"' '"runs"' '"speedup"' '"stages_s"' '"gram_gflops"' '"eigen_path"' '"laplacian"' '"eigen"' '"kmeans"' '"kernel_backend"' '"kernel_gram_gflops"'; do
        grep -q "$key" "$OUT" || fail "$OUT missing $key"
    done
    echo "OK (python3 unavailable; key-presence check only)"
fi

echo "BENCH PASS: $OUT"
