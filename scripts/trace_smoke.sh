#!/usr/bin/env bash
# Smoke test of the observability CLI surface:
#   generate synthetic blobs → `dasc train --stage-timings --trace-out`
#   → assert the report contains a stage table and the trace file is
#   valid Chrome trace-event JSON with the documented pipeline stages.
set -euo pipefail

cd "$(dirname "$0")/.."

WORK="$(mktemp -d "${TMPDIR:-/tmp}/dasc-trace.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

fail() { echo "TRACE SMOKE FAIL: $*" >&2; exit 1; }

echo "== build =="
cargo build --release -q -p dasc-cli
DASC=target/release/dasc

echo "== train with tracing =="
"$DASC" generate --kind blobs --n 500 --d 8 --k 4 --seed 7 \
    --output "$WORK/train.csv"
"$DASC" train --input "$WORK/train.csv" --k 4 --labels-last-column \
    --seed 7 --model-out "$WORK/model.dasc" \
    --stage-timings --trace-out "$WORK/trace.json" | tee "$WORK/train.log"

grep -q 'stage timings:' "$WORK/train.log" || fail "report has no stage table"
grep -q 'dasc\.lsh' "$WORK/train.log" || fail "stage table lacks dasc.lsh"

echo "== validate trace json =="
[ -s "$WORK/trace.json" ] || fail "trace file missing or empty"
if command -v python3 >/dev/null 2>&1; then
    python3 - "$WORK/trace.json" <<'EOF'
import json, sys
events = json.load(open(sys.argv[1]))
assert isinstance(events, list) and events, "trace is not a non-empty array"
names = {e["name"] for e in events if e["name"].startswith("dasc.")}
for e in events:
    for field in ("name", "ph", "ts", "dur", "pid", "tid"):
        assert field in e, f"event missing {field}: {e}"
    assert e["ph"] == "X", f"unexpected phase {e['ph']}"
assert len(names) >= 5, f"expected >=5 distinct dasc.* stages, got {sorted(names)}"
print(f"trace OK: {len(events)} events, stages: {sorted(names)}")
EOF
else
    # No python3: structural greps over the JSON text.
    head -c1 "$WORK/trace.json" | grep -q '\[' || fail "trace is not a JSON array"
    for stage in dasc.lsh dasc.bucket dasc.gram dasc.cluster dasc.consolidate; do
        grep -q "\"name\":\"$stage\"" "$WORK/trace.json" \
            || fail "trace lacks stage $stage"
    done
fi

echo "TRACE SMOKE PASS"
