#!/usr/bin/env bash
# End-to-end smoke test of the serving subsystem:
#   generate synthetic blobs → train + persist a model → start the
#   HTTP server → query /healthz, /assign, /assign_batch, /stats,
#   /metrics → verify sane responses → shut down.
#
# Needs only cargo and standard POSIX tools; uses curl when present
# and falls back to a bash /dev/tcp client otherwise.
set -euo pipefail

cd "$(dirname "$0")/.."

PORT="${SMOKE_PORT:-17878}"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/dasc-smoke.XXXXXX")"
SERVER_PID=""

cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    [ -n "$SERVER_PID" ] && wait "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "SMOKE FAIL: $*" >&2; exit 1; }

# Minimal HTTP POST/GET returning the response body, so the script
# also works on boxes without curl.
request() { # method path [json-body]
    local method="$1" path="$2" body="${3:-}"
    if command -v curl >/dev/null 2>&1; then
        if [ "$method" = POST ]; then
            curl -sf -X POST -H 'Content-Type: application/json' \
                -d "$body" "http://127.0.0.1:$PORT$path"
        else
            curl -sf "http://127.0.0.1:$PORT$path"
        fi
    else
        exec 3<>"/dev/tcp/127.0.0.1/$PORT" || return 1
        {
            printf '%s %s HTTP/1.1\r\n' "$method" "$path"
            printf 'Host: localhost\r\nConnection: close\r\n'
            printf 'Content-Length: %s\r\n\r\n%s' "${#body}" "$body"
        } >&3
        # Body = everything after the blank line.
        tr -d '\r' <&3 | sed -n '/^$/,$p' | tail -n +2
        exec 3<&- 3>&-
    fi
}

echo "== build =="
cargo build --release -q -p dasc-cli

DASC=target/release/dasc

echo "== train =="
"$DASC" generate --kind blobs --n 600 --d 8 --k 4 --seed 11 \
    --output "$WORK/train.csv"
"$DASC" train --input "$WORK/train.csv" --k 4 --labels-last-column \
    --seed 11 --model-out "$WORK/model.dasc" | tee "$WORK/train.log"
grep -q 'artifact written to' "$WORK/train.log" || fail "train produced no artifact"

echo "== serve =="
"$DASC" serve --model "$WORK/model.dasc" --port "$PORT" >"$WORK/serve.log" 2>&1 &
SERVER_PID=$!

for _ in $(seq 1 50); do
    if request GET /healthz >/dev/null 2>&1; then break; fi
    kill -0 "$SERVER_PID" 2>/dev/null || { cat "$WORK/serve.log" >&2; fail "server died"; }
    sleep 0.2
done

echo "== query =="
HEALTH="$(request GET /healthz)"
echo "healthz: $HEALTH"
[ "$HEALTH" = '{"status":"ok"}' ] || fail "unexpected /healthz reply: $HEALTH"

# A point from the first training blob must come back with a cluster id
# and a routing tier.
POINT="$(head -2 "$WORK/train.csv" | tail -1 | rev | cut -d, -f2- | rev)"
ASSIGN="$(request POST /assign "{\"point\":[$POINT]}")"
echo "assign: $ASSIGN"
case "$ASSIGN" in
    *'"cluster":'*'"route":'*) ;;
    *) fail "unexpected /assign reply: $ASSIGN" ;;
esac

BATCH="$(request POST /assign_batch "{\"points\":[[$POINT],[$POINT]]}")"
echo "assign_batch: $BATCH"
case "$BATCH" in
    *'"count":2'*) ;;
    *) fail "unexpected /assign_batch reply: $BATCH" ;;
esac

STATS="$(request GET /stats)"
echo "stats: $STATS"
case "$STATS" in
    *'"routing":'*'"total":3'*) ;;
    *) fail "stats did not count 3 routed assignments: $STATS" ;;
esac

echo "== metrics =="
METRICS="$(request GET /metrics)"
echo "$METRICS" | head -5
for series in \
    'dasc_serve_request_duration_us_bucket{endpoint="assign"' \
    'dasc_serve_request_errors_total{endpoint="assign"}' \
    'dasc_serve_route_total{tier="exact"}' \
    'dasc_serve_uptime_seconds'; do
    case "$METRICS" in
        *"$series"*) ;;
        *) fail "/metrics missing series $series" ;;
    esac
done
# Well-formed exposition: every line is a comment or "name value".
echo "$METRICS" | grep -vE '^(# .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.+eE-]+)$' \
    | grep -q . && fail "/metrics has malformed lines" || true

echo "== offline assign =="
"$DASC" assign --model "$WORK/model.dasc" --input "$WORK/train.csv" \
    --labels-last-column --output "$WORK/assign.csv" | tee "$WORK/assign.log"
grep -q 'routing:' "$WORK/assign.log" || fail "assign reported no routing counts"
[ "$(tail -n +2 "$WORK/assign.csv" | wc -l)" -eq 600 ] || fail "assign wrote wrong row count"

echo "SMOKE PASS"
