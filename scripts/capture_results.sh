#!/usr/bin/env bash
# Regenerate every figure/table of the paper at the default (quick) scale
# and store the outputs under results/. Pass --full for paper-scale runs.
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE_FLAG="${1:-}"
mkdir -p results

BINS=(
  fig1_scalability
  fig2_collision
  table1_categories
  fig3_accuracy_wiki
  fig4_dbi_ase
  fig5_fnorm
  fig6_time_memory
  table3_elasticity
  fterm_selection
  ablation_quality
  scalability_sweep
)

cargo build --release -p dasc-bench

for bin in "${BINS[@]}"; do
  echo "== $bin =="
  # shellcheck disable=SC2086
  "target/release/$bin" $SCALE_FLAG 2>/dev/null | tee "results/$bin.txt"
done

echo "results captured under results/"
