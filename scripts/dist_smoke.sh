#!/usr/bin/env bash
# End-to-end smoke test of the distributed runtime:
#   generate synthetic blobs → start 1 coordinator + 2 workers as real
#   OS processes → run `cluster --dist` against the coordinator → diff
#   the assignments against single-process `--dist local` → pack a
#   larger dataset into a .dstr store and submit it BY REFERENCE
#   (shard-addressed tasks, workers pull shards through their caches)
#   with --trace-out while killing one worker mid-job and verify the
#   job still completes bit-identical to the inline single-process run,
#   the merged Chrome trace spans the coordinator plus both worker
#   lanes with the killed worker's task visible as a retried event →
#   scrape the federated metrics over both the wire protocol and the
#   coordinator's HTTP /metrics endpoint, asserting per-worker labeled
#   series including the shard-cache counters.
set -euo pipefail

cd "$(dirname "$0")/.."

PORT="${DIST_SMOKE_PORT:-17979}"
HTTP_PORT=$((PORT + 1))
ADDR="127.0.0.1:$PORT"
HTTP_ADDR="127.0.0.1:$HTTP_PORT"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/dasc-dist-smoke.XXXXXX")"
COORD_PID=""
W1_PID=""
W2_PID=""

cleanup() {
    for pid in "$W1_PID" "$W2_PID" "$COORD_PID"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    for pid in "$W1_PID" "$W2_PID" "$COORD_PID"; do
        [ -n "$pid" ] && wait "$pid" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "DIST SMOKE FAIL: $*" >&2; exit 1; }

scrape_http_metrics() {
    if command -v curl >/dev/null 2>&1; then
        curl -sf "http://$HTTP_ADDR/metrics"
    else
        python3 -c "import urllib.request; \
            print(urllib.request.urlopen('http://$HTTP_ADDR/metrics').read().decode())"
    fi
}

echo "== build =="
cargo build --release -q -p dasc-cli

DASC=target/release/dasc

echo "== generate =="
"$DASC" generate --kind blobs --n 600 --d 8 --k 4 --seed 11 \
    --output "$WORK/pts.csv"

echo "== start cluster (1 coordinator + 2 workers) =="
"$DASC" coordinator --addr 127.0.0.1 --port "$PORT" --http-port "$HTTP_PORT" \
    >"$WORK/coord.log" 2>&1 &
COORD_PID=$!
for _ in $(seq 1 50); do
    grep -q 'coordinator listening' "$WORK/coord.log" 2>/dev/null && break
    kill -0 "$COORD_PID" 2>/dev/null || { cat "$WORK/coord.log" >&2; fail "coordinator died"; }
    sleep 0.2
done
grep -q 'coordinator listening' "$WORK/coord.log" || fail "coordinator never became ready"

"$DASC" worker --coordinator "$ADDR" --name smoke-w1 >"$WORK/w1.log" 2>&1 &
W1_PID=$!
"$DASC" worker --coordinator "$ADDR" --name smoke-w2 >"$WORK/w2.log" 2>&1 &
W2_PID=$!
for _ in $(seq 1 50); do
    kill -0 "$W1_PID" 2>/dev/null || { cat "$WORK/w1.log" >&2; fail "worker 1 died"; }
    kill -0 "$W2_PID" 2>/dev/null || { cat "$WORK/w2.log" >&2; fail "worker 2 died"; }
    REGISTERED="$("$DASC" dist-metrics --coordinator "$ADDR" 2>/dev/null \
        | awk '/^dasc_dist_workers_registered_total /{print $2}')" || REGISTERED=0
    [ "${REGISTERED:-0}" -ge 2 ] 2>/dev/null && break
    sleep 0.2
done
[ "${REGISTERED:-0}" -ge 2 ] || fail "workers never registered (saw '${REGISTERED:-}')"

echo "== distributed vs single-process =="
"$DASC" cluster --input "$WORK/pts.csv" --k 4 --seed 11 --labels-last-column \
    --dist "$ADDR" --output "$WORK/dist.csv" | tee "$WORK/dist.log"
grep -q "dist($ADDR)" "$WORK/dist.log" || fail "distributed run produced no dist report"

"$DASC" cluster --input "$WORK/pts.csv" --k 4 --seed 11 --labels-last-column \
    --dist local --output "$WORK/local.csv" | tee "$WORK/local.log"
grep -q 'dist(local)' "$WORK/local.log" || fail "local run produced no dist report"

diff -q "$WORK/dist.csv" "$WORK/local.csv" \
    || fail "distributed assignments differ from single-process"
echo "assignments bit-identical across 2 workers vs single process"

echo "== pack a store for the shard-addressed job =="
"$DASC" generate --kind blobs --n 12000 --d 24 --k 6 --seed 23 \
    --output "$WORK/big.csv"
"$DASC" pack --input "$WORK/big.csv" --output "$WORK/big.dstr" \
    --shard-rows 2048 --labels-last-column | tee "$WORK/pack.log"
grep -q 'packed 12000 rows' "$WORK/pack.log" || fail "pack reported wrong row count"
"$DASC" inspect --data "$WORK/big.dstr" | tee "$WORK/inspect.log"
grep -q 'checksums     all' "$WORK/inspect.log" || fail "inspect did not verify checksums"

echo "== kill a worker mid-job (shard-addressed, traced) =="
workers_roster() {
    if command -v curl >/dev/null 2>&1; then
        curl -sf "http://$HTTP_ADDR/workers"
    else
        python3 -c "import urllib.request; \
            print(urllib.request.urlopen('http://$HTTP_ADDR/workers').read().decode())"
    fi
}
"$DASC" cluster --data "$WORK/big.dstr" --k 6 --seed 23 \
    --dist "$ADDR" --output "$WORK/big-dist.csv" \
    --trace-out "$WORK/trace.json" >"$WORK/big-dist.log" 2>&1 &
JOB_PID=$!
# Pick the victim dynamically: poll the /workers roster until some
# worker has been stuck on the SAME task across two polls (in-flight
# task held, tasks_done unchanged ⇒ it has been executing for 100ms+,
# long enough that the kill provably lands mid-task and the task must
# re-queue as a retried event — not just a lost worker). Bucket sizes
# are skewed, so which worker draws the long reduce task varies.
VICTIM=""
PREV=""
for _ in $(seq 1 300); do
    kill -0 "$JOB_PID" 2>/dev/null || break
    CUR="$(workers_roster 2>/dev/null)" || CUR=""
    VICTIM="$(python3 - "$PREV" "$CUR" <<'EOF'
import json, sys
prev_raw, cur_raw = sys.argv[1], sys.argv[2]
try:
    cur = json.loads(cur_raw)["workers"]
    prev = {w["name"]: w for w in json.loads(prev_raw)["workers"]} if prev_raw else {}
except Exception:
    sys.exit(0)
for w in cur:
    p = prev.get(w["name"])
    if p and w["in_flight"] >= 1 and p["in_flight"] >= 1 \
            and w["tasks_done"] == p["tasks_done"]:
        print(w["name"])
        break
EOF
)"
    [ -n "$VICTIM" ] && break
    PREV="$CUR"
    sleep 0.1
done
kill -0 "$JOB_PID" 2>/dev/null || { cat "$WORK/big-dist.log" >&2; fail "job finished before the kill — enlarge the dataset"; }
[ -n "$VICTIM" ] || fail "never caught a worker mid-task via /workers"
if [ "$VICTIM" = smoke-w1 ]; then
    SURVIVOR=smoke-w2
    kill -9 "$W1_PID"; wait "$W1_PID" 2>/dev/null || true; W1_PID=""
else
    SURVIVOR=smoke-w1
    kill -9 "$W2_PID"; wait "$W2_PID" 2>/dev/null || true; W2_PID=""
fi
echo "killed $VICTIM mid-task with the job in flight"
wait "$JOB_PID" || { cat "$WORK/big-dist.log" >&2; fail "job did not survive the worker kill"; }
cat "$WORK/big-dist.log"
grep -q 'shard-addressed' "$WORK/big-dist.log" \
    || fail "packed-store job did not run shard-addressed"

# Label diff vs the inline path: the same dataset from its CSV through
# the single-process engine must match the shard-addressed job that
# lost a worker mid-flight.
"$DASC" cluster --input "$WORK/big.csv" --k 6 --seed 23 --labels-last-column \
    --dist local --output "$WORK/big-local.csv" >/dev/null
diff -q "$WORK/big-dist.csv" "$WORK/big-local.csv" \
    || fail "shard-addressed assignments diverged from inline after the worker kill"
echo "shard-addressed assignments bit-identical to inline despite a killed worker"

echo "== merged cluster trace =="
[ -s "$WORK/trace.json" ] || fail "traced run wrote no trace.json"
python3 - "$WORK/trace.json" <<'EOF' || fail "merged trace structure check failed"
import json, sys

events = json.load(open(sys.argv[1]))
lanes = {e["args"]["name"] for e in events
         if e.get("ph") == "M" and e.get("name") == "process_name"}
assert "coordinator" in lanes, f"no coordinator lane in {lanes}"
workers = lanes - {"coordinator"}
assert len(workers) >= 2, f"want >=2 worker lanes, got {workers}"
spans = {e["name"] for e in events if e.get("ph") == "X"}
for want in ("dist.job", "dist.stage1", "dist.stage2", "dist.task.map"):
    assert want in spans, f"missing span {want}"
instants = [e["name"] for e in events if e.get("ph") == "i"]
assert any("retried" in n for n in instants), \
    f"killed worker's task never shows as retried: {instants}"
print(f"trace OK: lanes={sorted(lanes)}, {len(events)} events, "
      f"retry markers={[n for n in instants if 'retried' in n][:2]}")
EOF

echo "== dist metrics =="
METRICS="$("$DASC" dist-metrics --coordinator "$ADDR")"
# (awk, not `head`: head exits early and SIGPIPEs grep under pipefail)
echo "$METRICS" | grep '^dasc_dist' | awk 'NR <= 15'
for series in \
    dasc_dist_tasks_assigned_total \
    dasc_dist_tasks_completed_total \
    dasc_dist_workers_registered_total \
    dasc_dist_workers_lost_total \
    dasc_dist_jobs_total \
    dasc_dist_shuffle_records_total \
    dasc_dist_heartbeats_total \
    dasc_store_shards_served_total \
    dasc_net_frames_sent_total \
    dasc_net_frames_received_total; do
    case "$METRICS" in
        *"$series"*) ;;
        *) fail "metrics missing series $series" ;;
    esac
done
LOST="$(echo "$METRICS" | awk '/^dasc_dist_workers_lost_total /{print $2}')"
[ "${LOST:-0}" -ge 1 ] || fail "coordinator never recorded the killed worker (lost=$LOST)"

echo "== federated metrics over HTTP =="
HTTP_METRICS="$(scrape_http_metrics)" \
    || fail "GET /metrics from the coordinator HTTP endpoint failed"
# Task lifecycle histograms must carry per-stage labels, and the
# coordinator-side per-worker series must cover BOTH workers — including
# the one killed mid-job (post-mortems need the dead worker's numbers).
echo "$HTTP_METRICS" | grep -q 'dasc_dist_task_duration_us_count{stage="map"' \
    || fail "HTTP /metrics missing per-stage task duration histogram"
for w in smoke-w1 smoke-w2; do
    echo "$HTTP_METRICS" | grep -q "dasc_dist_task_duration_us.*worker=\"$w\"" \
        || fail "HTTP /metrics missing task duration series for $w"
done
echo "$HTTP_METRICS" | grep -q '^dasc_dist_stragglers' \
    || fail "HTTP /metrics missing the straggler gauge"
# Heartbeat federation: the surviving worker's own registry re-labeled.
echo "$HTTP_METRICS" | grep -q "worker=\"$SURVIVOR\"" \
    || fail "HTTP /metrics has no federated series for $SURVIVOR"
# The shard-addressed job leaves its cache telemetry behind: misses on
# the workers (federated via heartbeats) and serves on the coordinator.
echo "$HTTP_METRICS" | grep -q 'dasc_store_shard_cache_misses_total' \
    || fail "HTTP /metrics missing federated shard cache counters"
echo "$HTTP_METRICS" | grep -q 'dasc_store_shards_served_total' \
    || fail "HTTP /metrics missing the coordinator's shards-served counter"
echo "per-worker federation visible over HTTP (both workers, straggler gauge, shard cache)"

echo "DIST SMOKE PASS"
