#!/usr/bin/env bash
# End-to-end smoke test of the distributed runtime:
#   generate synthetic blobs → start 1 coordinator + 2 workers as real
#   OS processes → run `cluster --dist` against the coordinator → diff
#   the assignments against single-process `--dist local` → re-run on a
#   larger dataset while killing one worker mid-job and verify the job
#   still completes with identical output → scrape the dist counters.
set -euo pipefail

cd "$(dirname "$0")/.."

PORT="${DIST_SMOKE_PORT:-17979}"
ADDR="127.0.0.1:$PORT"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/dasc-dist-smoke.XXXXXX")"
COORD_PID=""
W1_PID=""
W2_PID=""

cleanup() {
    for pid in "$W1_PID" "$W2_PID" "$COORD_PID"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    for pid in "$W1_PID" "$W2_PID" "$COORD_PID"; do
        [ -n "$pid" ] && wait "$pid" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "DIST SMOKE FAIL: $*" >&2; exit 1; }

echo "== build =="
cargo build --release -q -p dasc-cli

DASC=target/release/dasc

echo "== generate =="
"$DASC" generate --kind blobs --n 600 --d 8 --k 4 --seed 11 \
    --output "$WORK/pts.csv"

echo "== start cluster (1 coordinator + 2 workers) =="
"$DASC" coordinator --addr 127.0.0.1 --port "$PORT" \
    >"$WORK/coord.log" 2>&1 &
COORD_PID=$!
for _ in $(seq 1 50); do
    grep -q 'coordinator listening' "$WORK/coord.log" 2>/dev/null && break
    kill -0 "$COORD_PID" 2>/dev/null || { cat "$WORK/coord.log" >&2; fail "coordinator died"; }
    sleep 0.2
done
grep -q 'coordinator listening' "$WORK/coord.log" || fail "coordinator never became ready"

"$DASC" worker --coordinator "$ADDR" --name smoke-w1 >"$WORK/w1.log" 2>&1 &
W1_PID=$!
"$DASC" worker --coordinator "$ADDR" --name smoke-w2 >"$WORK/w2.log" 2>&1 &
W2_PID=$!
for _ in $(seq 1 50); do
    kill -0 "$W1_PID" 2>/dev/null || { cat "$WORK/w1.log" >&2; fail "worker 1 died"; }
    kill -0 "$W2_PID" 2>/dev/null || { cat "$WORK/w2.log" >&2; fail "worker 2 died"; }
    REGISTERED="$("$DASC" dist-metrics --coordinator "$ADDR" 2>/dev/null \
        | awk '/^dasc_dist_workers_registered_total /{print $2}')" || REGISTERED=0
    [ "${REGISTERED:-0}" -ge 2 ] 2>/dev/null && break
    sleep 0.2
done
[ "${REGISTERED:-0}" -ge 2 ] || fail "workers never registered (saw '${REGISTERED:-}')"

echo "== distributed vs single-process =="
"$DASC" cluster --input "$WORK/pts.csv" --k 4 --seed 11 --labels-last-column \
    --dist "$ADDR" --output "$WORK/dist.csv" | tee "$WORK/dist.log"
grep -q "dist($ADDR)" "$WORK/dist.log" || fail "distributed run produced no dist report"

"$DASC" cluster --input "$WORK/pts.csv" --k 4 --seed 11 --labels-last-column \
    --dist local --output "$WORK/local.csv" | tee "$WORK/local.log"
grep -q 'dist(local)' "$WORK/local.log" || fail "local run produced no dist report"

diff -q "$WORK/dist.csv" "$WORK/local.csv" \
    || fail "distributed assignments differ from single-process"
echo "assignments bit-identical across 2 workers vs single process"

echo "== kill a worker mid-job =="
"$DASC" generate --kind blobs --n 12000 --d 24 --k 6 --seed 23 \
    --output "$WORK/big.csv"
"$DASC" cluster --input "$WORK/big.csv" --k 6 --seed 23 --labels-last-column \
    --dist "$ADDR" --output "$WORK/big-dist.csv" >"$WORK/big-dist.log" 2>&1 &
JOB_PID=$!
sleep 0.3
kill -0 "$JOB_PID" 2>/dev/null || { cat "$WORK/big-dist.log" >&2; fail "job finished before the kill — enlarge the dataset"; }
kill -9 "$W2_PID"
wait "$W2_PID" 2>/dev/null || true
W2_PID=""
echo "killed worker 2 with the job in flight"
wait "$JOB_PID" || { cat "$WORK/big-dist.log" >&2; fail "job did not survive the worker kill"; }
cat "$WORK/big-dist.log"

"$DASC" cluster --input "$WORK/big.csv" --k 6 --seed 23 --labels-last-column \
    --dist local --output "$WORK/big-local.csv" >/dev/null
diff -q "$WORK/big-dist.csv" "$WORK/big-local.csv" \
    || fail "assignments diverged after the worker kill"
echo "assignments bit-identical despite a killed worker"

echo "== dist metrics =="
METRICS="$("$DASC" dist-metrics --coordinator "$ADDR")"
echo "$METRICS" | grep '^dasc_dist' | head -15
for series in \
    dasc_dist_tasks_assigned_total \
    dasc_dist_tasks_completed_total \
    dasc_dist_workers_registered_total \
    dasc_dist_workers_lost_total \
    dasc_dist_jobs_total \
    dasc_dist_shuffle_records_total \
    dasc_dist_heartbeats_total \
    dasc_net_frames_sent_total \
    dasc_net_frames_received_total; do
    case "$METRICS" in
        *"$series"*) ;;
        *) fail "metrics missing series $series" ;;
    esac
done
LOST="$(echo "$METRICS" | awk '/^dasc_dist_workers_lost_total /{print $2}')"
[ "${LOST:-0}" -ge 1 ] || fail "coordinator never recorded the killed worker (lost=$LOST)"

echo "DIST SMOKE PASS"
