//! End-to-end integration tests across the workspace crates: data
//! generation → LSH → kernel approximation → clustering → metrics.

use dasc::core::{
    Dasc, DascConfig, Nystrom, NystromConfig, ParallelSpectral, PscConfig, SpectralClustering,
    SpectralConfig,
};
use dasc::kernel::full_gram;
use dasc::metrics::{fnorm_ratio, nmi};
use dasc::prelude::*;

fn blob_dataset(n: usize, k: usize) -> Dataset {
    SyntheticConfig::blobs(n, 16, k).seed(0xE2E).generate()
}

#[test]
fn dasc_recovers_synthetic_clusters() {
    let ds = blob_dataset(600, 4);
    let truth = ds.labels.as_ref().unwrap();
    let kernel = Kernel::gaussian_median_heuristic(&ds.points);
    let res = Dasc::new(DascConfig::for_dataset(600, 4).kernel(kernel)).run(&ds.points);
    let acc = accuracy(&res.clustering.assignments, truth);
    assert!(acc > 0.9, "accuracy {acc}");
}

#[test]
fn all_four_algorithms_agree_on_easy_data() {
    let ds = blob_dataset(400, 3);
    let truth = ds.labels.as_ref().unwrap();
    let kernel = Kernel::gaussian_median_heuristic(&ds.points);

    let dasc = Dasc::new(DascConfig::for_dataset(400, 3).kernel(kernel))
        .run(&ds.points)
        .clustering;
    let sc = SpectralClustering::new(SpectralConfig::new(3).kernel(kernel))
        .run(&ds.points)
        .clustering;
    let psc = ParallelSpectral::new(PscConfig::new(3).kernel(kernel))
        .run(&ds.points)
        .clustering;
    let nyst = Nystrom::new(NystromConfig::new(3).kernel(kernel))
        .run(&ds.points)
        .clustering;

    for (name, c) in [("dasc", &dasc), ("sc", &sc), ("psc", &psc), ("nyst", &nyst)] {
        let acc = accuracy(&c.assignments, truth);
        assert!(acc > 0.9, "{name}: accuracy {acc}");
    }
}

#[test]
fn dasc_saves_memory_relative_to_full_gram() {
    let ds = blob_dataset(800, 6);
    let kernel = Kernel::gaussian_median_heuristic(&ds.points);
    let res = Dasc::new(
        DascConfig::for_dataset(800, 6)
            .kernel(kernel)
            .lsh(LshConfig::with_bits(4)),
    )
    .run(&ds.points);
    let full = 4 * 800 * 800;
    assert!(res.buckets.len() > 1, "expected multiple buckets");
    assert!(
        res.approx_gram_bytes < full,
        "approx {} >= full {full}",
        res.approx_gram_bytes
    );
}

#[test]
fn approximate_gram_never_gains_frobenius_mass() {
    let ds = blob_dataset(200, 4);
    let kernel = Kernel::gaussian(0.5);
    let dasc = Dasc::new(
        DascConfig::for_dataset(200, 4)
            .kernel(kernel)
            .lsh(LshConfig::with_bits(3)),
    );
    let approx = dasc.approximate_gram(&ds.points);
    let exact = full_gram(&ds.points, &kernel);
    let r = fnorm_ratio(&approx.to_dense(), &exact);
    assert!(r <= 1.0 + 1e-12, "ratio {r} above 1");
    assert!(r > 0.5, "ratio {r} suspiciously low for blob data");
}

#[test]
fn distributed_and_serial_dasc_match() {
    let ds = blob_dataset(300, 4);
    let truth = ds.labels.as_ref().unwrap();
    let kernel = Kernel::gaussian_median_heuristic(&ds.points);
    let cfg = DascConfig::for_dataset(300, 4).kernel(kernel);

    let serial = Dasc::new(cfg.clone()).run(&ds.points);
    let dist = Dasc::new(cfg).run_distributed(&ds.points, &ClusterConfig::single_node());

    assert_eq!(dist.num_buckets, serial.buckets.len());
    assert_eq!(dist.approx_gram_bytes, serial.approx_gram_bytes);
    let a = accuracy(&serial.clustering.assignments, truth);
    let b = accuracy(&dist.clustering.assignments, truth);
    assert!((a - b).abs() < 1e-12, "serial {a} vs distributed {b}");
}

#[test]
fn wiki_corpus_head_reaches_paper_accuracy_band() {
    // Figure 3's head: > 0.9 accuracy for SC and DASC at N = 1024.
    let ds = WikiCorpusConfig::new(1024).seed(0xF164).generate();
    let truth = ds.labels.as_ref().unwrap();
    let k = ds.num_classes().unwrap();
    let kernel = Kernel::gaussian_median_heuristic(&ds.points);

    let sc = SpectralClustering::new(SpectralConfig::new(k).kernel(kernel))
        .run(&ds.points)
        .clustering;
    assert!(accuracy(&sc.assignments, truth) > 0.9);

    // DASC at the default M trades a few points of accuracy for
    // parallelism (the Figure 2 tradeoff); it must stay in SC's band.
    let dasc = Dasc::new(DascConfig::for_dataset(1024, k).kernel(kernel))
        .run(&ds.points)
        .clustering;
    let dasc_acc = accuracy(&dasc.assignments, truth);
    assert!(dasc_acc > 0.8, "DASC accuracy {dasc_acc}");
}

#[test]
fn nmi_tracks_accuracy_ordering() {
    let ds = blob_dataset(300, 3);
    let truth = ds.labels.as_ref().unwrap();
    let kernel = Kernel::gaussian_median_heuristic(&ds.points);
    let good = SpectralClustering::new(SpectralConfig::new(3).kernel(kernel))
        .run(&ds.points)
        .clustering;
    // A deliberately bad clustering: everything in one cluster.
    let bad = vec![0usize; 300];
    assert!(nmi(&good.assignments, truth) > nmi(&bad, truth));
}

#[test]
fn grid_mixture_is_perfectly_bucketable() {
    let ds = dasc::data::SyntheticConfig::grid(512, 16, 4)
        .seed(9)
        .generate();
    let truth = ds.labels.as_ref().unwrap();
    let kernel = Kernel::gaussian_median_heuristic(&ds.points);
    let res = Dasc::new(
        DascConfig::for_dataset(512, 16)
            .kernel(kernel)
            .lsh(LshConfig::with_bits(4)),
    )
    .run(&ds.points);
    let acc = accuracy(&res.clustering.assignments, truth);
    assert!(acc > 0.99, "grid accuracy {acc}");
}
