//! Integration tests of the MapReduce substrate in combination with the
//! DASC stages: deterministic jobs, DFS staging, elasticity replay.

use std::time::Duration;

use dasc::core::{Dasc, DascConfig};
use dasc::mapreduce::{run_job, simulate_makespan, ClusterConfig, Dfs, FnMapper, FnReducer};
use dasc::prelude::*;

#[test]
fn engine_output_is_identical_across_cluster_sizes() {
    // A job whose reducer output depends on value order — the stable
    // shuffle must make it cluster-size independent.
    let mapper = FnMapper::new(
        |i: usize, v: u32, emit: &mut dyn FnMut(u32, (usize, u32))| {
            emit(v % 5, (i, v));
        },
    );
    let reducer = FnReducer::new(
        |key: u32, vs: Vec<(usize, u32)>, emit: &mut dyn FnMut(String)| {
            let ids: Vec<String> = vs.iter().map(|(i, _)| i.to_string()).collect();
            emit(format!("{key}:{}", ids.join(",")));
        },
    );
    let inputs: Vec<(usize, u32)> = (0..200u32).map(|v| (v as usize, v * 7)).collect();

    // Output *order* follows partition layout (reducer count), exactly
    // as Hadoop's part-files do; the record *set* — including the value
    // order inside each key group — must be identical.
    let mut a = run_job(
        &mapper,
        &reducer,
        inputs.clone(),
        &ClusterConfig::single_node(),
    )
    .records;
    let mut b = run_job(&mapper, &reducer, inputs.clone(), &ClusterConfig::emr(16)).records;
    let mut c = run_job(&mapper, &reducer, inputs, &ClusterConfig::emr(64)).records;
    a.sort();
    b.sort();
    c.sort();
    assert_eq!(a, b);
    assert_eq!(b, c);
}

#[test]
fn dasc_distributed_records_replayable_task_bag() {
    let ds = SyntheticConfig::blobs(400, 8, 4).seed(1).generate();
    let kernel = Kernel::gaussian_median_heuristic(&ds.points);
    let result = Dasc::new(DascConfig::for_dataset(400, 4).kernel(kernel))
        .run_distributed(&ds.points, &ClusterConfig::local_lab());

    // Makespan must be weakly decreasing in node count, bounded below by
    // the longest single task.
    let mut last = Duration::MAX;
    for nodes in [1usize, 2, 4, 8, 16, 32, 64] {
        let t = result.simulate_total(&ClusterConfig::emr(nodes));
        assert!(t <= last, "makespan increased at {nodes} nodes");
        last = t;
    }
    let longest_reduce = result
        .stage2
        .reduce_task_durations
        .iter()
        .max()
        .copied()
        .unwrap_or_default();
    assert!(last >= longest_reduce, "sim below critical path");
}

#[test]
fn makespan_bounds_hold() {
    let bag: Vec<Duration> = (1..=50u64).map(Duration::from_millis).collect();
    let total: Duration = bag.iter().sum();
    let max = *bag.iter().max().unwrap();
    for slots in [1usize, 3, 7, 50, 100] {
        let m = simulate_makespan(&bag, slots);
        assert!(m >= max, "below max task");
        assert!(m <= total, "above serial time");
        // Within 2x of the trivial lower bound (LPT is 4/3-optimal).
        let lower = total.as_nanos() / slots as u128;
        assert!(m.as_nanos() * 2 >= lower, "impossibly good makespan");
    }
}

#[test]
fn dfs_stages_bucket_files_between_jobs() {
    let mut cfg = ClusterConfig::emr(4);
    cfg.block_size = 128;
    let dfs = Dfs::new(cfg);

    let ds = SyntheticConfig::blobs(200, 8, 4).seed(2).generate();
    let dasc = Dasc::new(DascConfig::for_dataset(200, 4));
    let (_, buckets) = dasc.partition(&ds.points);
    for (i, b) in buckets.buckets().iter().enumerate() {
        let bytes: Vec<u8> = b
            .members
            .iter()
            .flat_map(|&m| (m as u32).to_le_bytes())
            .collect();
        dfs.put(&format!("/stage1/bucket-{i:04}"), bytes).unwrap();
    }

    // Stage 2 reads every staged file back and recovers the partition.
    let mut recovered = 0usize;
    for path in dfs.list("/stage1/") {
        let data = dfs.get(&path).unwrap();
        assert_eq!(data.len() % 4, 0);
        recovered += data.len() / 4;
    }
    assert_eq!(recovered, 200);
    // Replication triples storage.
    assert_eq!(dfs.total_stored_bytes(), 3 * dfs.logical_bytes());
}

#[test]
fn stats_reflect_job_structure() {
    let ds = SyntheticConfig::blobs(256, 8, 4).seed(3).generate();
    let kernel = Kernel::gaussian_median_heuristic(&ds.points);
    let mut executor = ClusterConfig::single_node();
    executor.records_per_split = 32;
    let result = Dasc::new(DascConfig::for_dataset(256, 4).kernel(kernel))
        .run_distributed(&ds.points, &executor);
    assert_eq!(result.stage1.input_records, 256);
    assert_eq!(result.stage1.shuffled_records, 256);
    assert!(result.stage1.num_map_tasks() >= 256 / 32);
    assert_eq!(result.stage2.num_reduce_tasks(), result.num_buckets);
    assert_eq!(result.clustering.len(), 256);
}
