//! Property-based tests over cross-crate invariants (proptest).

use proptest::prelude::*;

use dasc::core::{bucket_cluster_count, KMeans, KMeansConfig};
use dasc::kernel::{full_gram, ApproximateGram};
use dasc::linalg::{symmetric_eigen, Matrix};
use dasc::lsh::{BucketSet, LshConfig, Signature, SignatureModel};
use dasc::metrics::{accuracy, fnorm_ratio, nmi, purity};
use dasc::prelude::*;

/// Strategy: a small dataset of d-dimensional points in [0, 1].
fn points_strategy(max_n: usize, d: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.0f64..1.0, d..=d), 2..max_n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn buckets_partition_the_dataset(points in points_strategy(60, 4), bits in 1usize..6) {
        let model = SignatureModel::fit(&points, &LshConfig::with_bits(bits));
        let sigs = model.hash_all(&points);
        let buckets = BucketSet::from_signatures(&sigs);
        // Every point appears exactly once across buckets.
        let mut seen = vec![false; points.len()];
        for b in buckets.buckets() {
            for &i in &b.members {
                prop_assert!(!seen[i], "point {i} in two buckets");
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        // Merging (either strategy) preserves the partition property.
        for merged in [buckets.merge_similar(bits - 1), buckets.merge_greedy_pairs(bits - 1)] {
            let total: usize = merged.sizes().iter().sum();
            prop_assert_eq!(total, points.len());
            prop_assert!(merged.len() <= buckets.len());
        }
    }

    #[test]
    fn hamming_is_a_metric(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (sa, sb, sc) = (
            Signature::from_bits(a, 32),
            Signature::from_bits(b, 32),
            Signature::from_bits(c, 32),
        );
        prop_assert_eq!(sa.hamming(&sb), sb.hamming(&sa));
        prop_assert_eq!(sa.hamming(&sa), 0);
        prop_assert!(sa.hamming(&sc) <= sa.hamming(&sb) + sb.hamming(&sc));
        prop_assert_eq!(sa.differs_by_one(&sb), sa.hamming(&sb) == 1);
    }

    #[test]
    fn approximate_gram_is_dominated_by_full(points in points_strategy(30, 3), bits in 1usize..4) {
        let kernel = Kernel::gaussian(0.5);
        let model = SignatureModel::fit(&points, &LshConfig::with_bits(bits));
        let buckets = BucketSet::from_signatures(&model.hash_all(&points));
        let approx = ApproximateGram::from_buckets(&points, &buckets, &kernel);
        let exact = full_gram(&points, &kernel);
        let r = fnorm_ratio(&approx.to_dense(), &exact);
        prop_assert!(r <= 1.0 + 1e-12, "ratio {} above one", r);
        prop_assert!(r > 0.0);
        // Stored entries never exceed the full matrix.
        prop_assert!(approx.stored_entries() <= points.len() * points.len());
        // Diagonal is exact (Gaussian: ones).
        for i in 0..points.len() {
            prop_assert!((approx.get(i, i) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn external_metrics_stay_in_unit_interval(
        labels in prop::collection::vec(0usize..5, 2..40),
        preds in prop::collection::vec(0usize..5, 2..40),
    ) {
        let n = labels.len().min(preds.len());
        let (labels, preds) = (&labels[..n], &preds[..n]);
        for v in [accuracy(preds, labels), nmi(preds, labels), purity(preds, labels)] {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&v), "metric {} out of range", v);
        }
        // Identity labelling is perfect under every metric.
        prop_assert!((accuracy(labels, labels) - 1.0).abs() < 1e-12);
        prop_assert!((purity(labels, labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn accuracy_invariant_under_label_permutation(
        labels in prop::collection::vec(0usize..4, 4..30),
    ) {
        // Relabel 0↔3, 1↔2: accuracy against the original must be 1.
        let permuted: Vec<usize> = labels.iter().map(|&l| 3 - l).collect();
        prop_assert!((accuracy(&permuted, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kmeans_inertia_never_negative_and_k_monotone(points in points_strategy(40, 3)) {
        let i1 = KMeans::new(KMeansConfig::new(1)).run(&points).inertia;
        let i3 = KMeans::new(KMeansConfig::new(3)).run(&points).inertia;
        prop_assert!(i1 >= -1e-12);
        prop_assert!(i3 >= -1e-12);
        // More clusters never increase the (converged) objective much;
        // allow slack for local optima.
        prop_assert!(i3 <= i1 + 1e-9, "k=3 inertia {} > k=1 {}", i3, i1);
    }

    #[test]
    fn eigen_reconstruction_on_random_gram(points in points_strategy(16, 3)) {
        let g = full_gram(&points, &Kernel::gaussian(0.7));
        let eig = symmetric_eigen(&g);
        let n = g.nrows();
        // Reconstruct A = V Λ Vᵀ.
        let mut lam = Matrix::zeros(n, n);
        for i in 0..n {
            lam[(i, i)] = eig.eigenvalues[i];
        }
        let q = eig.eigenvectors_full();
        let rec = q.matmul(&lam).matmul(&q.transpose());
        prop_assert!(rec.max_abs_diff(&g) < 1e-7);
        // PSD: Gaussian Gram eigenvalues are non-negative.
        prop_assert!(eig.eigenvalues.iter().all(|&v| v > -1e-8));
    }

    #[test]
    fn bucket_cluster_count_is_an_apportionment(
        k in 1usize..50,
        sizes in prop::collection::vec(1usize..100, 1..10),
    ) {
        let n: usize = sizes.iter().sum();
        let mut total = 0usize;
        for &s in &sizes {
            let ki = bucket_cluster_count(k, s, n);
            prop_assert!(ki >= 1);
            prop_assert!(ki <= s);
            total += ki;
        }
        // Σ Kᵢ stays within a rounding margin of K (never off by more
        // than one per bucket), and at least one cluster per bucket.
        prop_assert!(total >= sizes.len());
        prop_assert!(total <= k + sizes.len());
    }

    #[test]
    fn signature_model_is_pure(points in points_strategy(30, 4)) {
        let cfg = LshConfig::with_bits(4);
        let m1 = SignatureModel::fit(&points, &cfg);
        let m2 = SignatureModel::fit(&points, &cfg);
        prop_assert_eq!(m1.hash_all(&points), m2.hash_all(&points));
    }

    #[test]
    fn kdtree_knn_matches_brute_force(points in points_strategy(50, 3), k in 1usize..8) {
        let tree = dasc::lsh::KdTree::build(&points);
        let q = &points[0];
        let got = tree.nearest(&points, q, k, Some(0));
        // Brute force reference.
        let mut want: Vec<(usize, f64)> = points
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 0)
            .map(|(i, p)| {
                let d: f64 = p.iter().zip(q).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
                (i, d)
            })
            .collect();
        want.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("NaN").then(a.0.cmp(&b.0)));
        want.truncate(k);
        // Distances must agree exactly (indices may differ under ties).
        let gd: Vec<f64> = got.iter().map(|x| x.1).collect();
        let wd: Vec<f64> = want.iter().map(|x| x.1).collect();
        prop_assert_eq!(gd.len(), wd.len());
        for (a, b) in gd.iter().zip(&wd) {
            prop_assert!((a - b).abs() < 1e-9, "distance {} vs {}", a, b);
        }
    }

    #[test]
    fn cholesky_solves_spd_systems(points in points_strategy(12, 3), reg in 0.1f64..5.0) {
        // Gaussian Gram + reg·I is SPD.
        let mut g = full_gram(&points, &Kernel::gaussian(0.5));
        let n = g.nrows();
        for i in 0..n {
            g[(i, i)] += reg;
        }
        let ch = dasc::linalg::Cholesky::new(&g).expect("SPD");
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let x = ch.solve(&b);
        let mut gx = vec![0.0; n];
        g.matvec_into(&x, &mut gx);
        for (l, r) in gx.iter().zip(&b) {
            prop_assert!((l - r).abs() < 1e-7, "residual {}", (l - r).abs());
        }
    }

    #[test]
    fn wide_signature_agrees_with_packed(bits in any::<u64>(), other in any::<u64>()) {
        use dasc::lsh::WideSignature;
        let (a, b) = (Signature::from_bits(bits, 64), Signature::from_bits(other, 64));
        let mut wa = WideSignature::zero(64);
        let mut wb = WideSignature::zero(64);
        for i in 0..64 {
            wa.set(i, a.get(i));
            wb.set(i, b.get(i));
        }
        prop_assert_eq!(wa.hamming(&wb), a.hamming(&b));
        prop_assert_eq!(wa.differs_by_one(&wb), a.differs_by_one(&b));
        prop_assert_eq!(wa.to_packed(), a);
    }

    #[test]
    fn pca_hash_bits_are_roughly_balanced(points in points_strategy(60, 3)) {
        prop_assume!(points.len() >= 10);
        // Skip degenerate inputs where all points coincide.
        let spread: f64 = points
            .iter()
            .map(|p| p.iter().sum::<f64>())
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| (lo.min(v), hi.max(v)))
            .1;
        prop_assume!(spread.is_finite());
        let ph = dasc::lsh::PcaHash::fit(&points, 2);
        let sigs = ph.hash_all(&points);
        let n = points.len();
        for bit in 0..2 {
            let ones = sigs.iter().filter(|s| s.get(bit)).count();
            // Median thresholds guarantee neither side exceeds ~n/2 + ties.
            prop_assert!(ones <= n, "impossible count");
            prop_assert!(ones * 2 <= n + n, "bit {} ones {}", bit, ones);
        }
    }
}
