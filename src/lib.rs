//! # dasc — Distributed Approximate Spectral Clustering
//!
//! Facade crate for the Rust reproduction of *“Distributed Approximate
//! Spectral Clustering for Large-Scale Datasets”* (Gao, Abd-Almageed,
//! Hefeeda; HPDC 2012). Re-exports the full public API of the workspace
//! crates under stable module names.
//!
//! ```
//! use dasc::prelude::*;
//!
//! // 200 points in two obvious blobs.
//! let ds = SyntheticConfig::blobs(200, 8, 2).seed(7).generate();
//! let result = Dasc::new(DascConfig::for_dataset(ds.points.len(), 2))
//!     .run(&ds.points);
//! assert_eq!(result.clustering.len(), 200);
//! ```

pub use dasc_analysis as analysis;
pub use dasc_core as core;
pub use dasc_data as data;
pub use dasc_dist as dist;
pub use dasc_kernel as kernel;
pub use dasc_linalg as linalg;
pub use dasc_lsh as lsh;
pub use dasc_mapreduce as mapreduce;
pub use dasc_metrics as metrics;
pub use dasc_net as net;
pub use dasc_serve as serve;

/// Commonly used items, re-exported for `use dasc::prelude::*`.
pub mod prelude {
    pub use dasc_core::{
        distributed_kmeans, Dasc, DascConfig, DascRegressor, DascTrained, KMeans, KMeansConfig,
        Nystrom, NystromConfig, ParallelSpectral, PscConfig, SpectralClustering, SpectralConfig,
    };
    pub use dasc_data::{Dataset, SyntheticConfig, WikiCorpusConfig};
    pub use dasc_dist::{Coordinator, JobClient, JobSpec, WorkerOptions};
    pub use dasc_kernel::{ApproximateGram, Kernel, RidgeModel};
    pub use dasc_lsh::{LshConfig, MergeStrategy, SignatureModel, ThresholdRule};
    pub use dasc_mapreduce::ClusterConfig;
    pub use dasc_metrics::{accuracy, ase, davies_bouldin, fnorm_ratio, nmi};
    pub use dasc_serve::{AssignmentEngine, ModelArtifact, Route, Server, ServerConfig};
}
